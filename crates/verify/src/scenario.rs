//! Fuzz scenarios: randomized interval streams a policy is driven over.
//!
//! A [`Scenario`] is the complete, self-contained input of one
//! differential or metamorphic check: the policy under test, a synthetic
//! TPI landscape (`steps × configs`, the "true" TPI each configuration
//! would deliver in each interval), plus an optional fault plan —
//! corrupted telemetry samples, switch failures, and mid-run hardware
//! retirement. Scenarios serialize to JSON with every `f64` stored as
//! its raw bit pattern, so a repro file replays **byte-for-byte**: the
//! replayed run performs the exact same float arithmetic as the run
//! that failed.

use crate::rng::Rng;
use cap_core::policy::PolicyKind;
use serde_json::Value;

/// Repro-file / scenario format version.
pub const SCENARIO_FORMAT: u32 = 1;

/// Which structure family the stream is shaped after.
///
/// The landscapes are synthetic either way (that is what makes 10k-case
/// fuzzing affordable), but their *shape* follows the two adaptive
/// structures: queue streams have a convex TPI-vs-configuration curve
/// with a phase-dependent sweet spot (Figure 10), cache streams a
/// monotone ramp that phase changes can invert (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Issue-queue-shaped: convex, interior optimum.
    Queue,
    /// Cache-boundary-shaped: ramps that invert across phases.
    Cache,
}

impl StreamKind {
    /// Stable lowercase name used in property names and repro files.
    pub fn name(self) -> &'static str {
        match self {
            StreamKind::Queue => "queue",
            StreamKind::Cache => "cache",
        }
    }

    /// Parses [`StreamKind::name`].
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "queue" => Some(StreamKind::Queue),
            "cache" => Some(StreamKind::Cache),
            _ => None,
        }
    }
}

/// Planned outcome of the k-th switch attempt (attempts past the end of
/// the plan succeed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchPlan {
    /// The switch completes.
    Succeed,
    /// The switch fails transiently.
    Transient,
    /// The switch fails permanently (broken configuration).
    Permanent,
}

/// One complete fuzz-case input.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The policy under differential test.
    pub policy: PolicyKind,
    /// The structure family the stream is shaped after.
    pub kind: StreamKind,
    /// Configurations under management.
    pub num_configs: usize,
    /// `landscape[t][c]`: the true TPI (ns) configuration `c` delivers in
    /// interval `t`.
    pub landscape: Vec<Vec<f64>>,
    /// Per-interval telemetry corruption: when `Some`, the policy
    /// observes this raw value instead of the landscape value (NaN,
    /// negative, zero, absurdly large, ...). The landscape value still
    /// defines the oracle.
    pub corrupt: Vec<Option<f64>>,
    /// Outcome plan for switch attempts, in attempt order.
    pub switch_faults: Vec<SwitchPlan>,
    /// Configurations retired by the hardware before observing the given
    /// step (never all of them).
    pub mask_at: Option<(usize, Vec<usize>)>,
}

impl Scenario {
    /// Number of intervals in the stream.
    pub fn steps(&self) -> usize {
        self.landscape.len()
    }

    /// Whether the scenario carries any fault-plan entries at all.
    pub fn is_faulty(&self) -> bool {
        self.corrupt.iter().any(Option::is_some)
            || self.switch_faults.iter().any(|f| *f != SwitchPlan::Succeed)
            || self.mask_at.is_some()
    }

    /// The raw sample the policy observes for interval `t` run at
    /// `config`: the corrupted telemetry if the fault plan says so, the
    /// true landscape value otherwise.
    pub fn sample(&self, t: usize, config: usize) -> f64 {
        self.corrupt[t].unwrap_or(self.landscape[t][config])
    }

    /// Planned outcome of switch attempt number `attempt`.
    pub fn fault_for(&self, attempt: usize) -> SwitchPlan {
        self.switch_faults.get(attempt).copied().unwrap_or(SwitchPlan::Succeed)
    }

    /// Generates one scenario from the deterministic stream.
    pub fn generate(rng: &mut Rng, policy: PolicyKind, kind: StreamKind, faulty: bool) -> Self {
        let num_configs = rng.range(2, 8) as usize;
        let steps = rng.range(20, 120) as usize;

        // Piecewise-constant phases: each phase rescales every
        // configuration, moving the optimum around.
        let phases = rng.range(1, 3) as usize;
        let mut boundaries: Vec<usize> = (0..phases - 1)
            .map(|_| rng.below(steps as u64) as usize)
            .collect();
        boundaries.sort_unstable();

        let base: Vec<f64> = match kind {
            StreamKind::Queue => {
                // Convex in the configuration index, optimum inside.
                let argmin = rng.below(num_configs as u64) as f64;
                let floor = 0.5 + rng.unit() * 2.0;
                let bend = 0.05 + rng.unit() * 0.4;
                (0..num_configs)
                    .map(|c| floor + bend * (c as f64 - argmin) * (c as f64 - argmin))
                    .collect()
            }
            StreamKind::Cache => {
                // A ramp; the sign decides which end wins before phases
                // start inverting it.
                let floor = 0.5 + rng.unit() * 2.0;
                let slope = (rng.unit() - 0.5) * 0.8;
                (0..num_configs).map(|c| (floor + slope * c as f64).max(0.1)).collect()
            }
        };
        let mult: Vec<Vec<f64>> = (0..phases)
            .map(|_| (0..num_configs).map(|_| 0.6 + rng.unit()).collect())
            .collect();

        let landscape: Vec<Vec<f64>> = (0..steps)
            .map(|t| {
                let phase = boundaries.iter().filter(|&&b| b <= t).count();
                (0..num_configs)
                    .map(|c| base[c] * mult[phase][c] * (1.0 + 0.02 * (rng.unit() - 0.5)))
                    .collect()
            })
            .collect();

        let corrupt: Vec<Option<f64>> = (0..steps)
            .map(|_| {
                if faulty && rng.chance(0.08) {
                    Some(*rng.pick(&[
                        f64::NAN,
                        f64::INFINITY,
                        f64::NEG_INFINITY,
                        -1.0,
                        0.0,
                        -0.0,
                        1.0e300,
                        1.0e-300,
                    ]))
                } else {
                    None
                }
            })
            .collect();

        let switch_faults: Vec<SwitchPlan> = if faulty {
            (0..32)
                .map(|_| {
                    if rng.chance(0.20) {
                        SwitchPlan::Transient
                    } else if rng.chance(0.03) {
                        SwitchPlan::Permanent
                    } else {
                        SwitchPlan::Succeed
                    }
                })
                .collect()
        } else {
            Vec::new()
        };

        let mask_at = if faulty && rng.chance(0.3) {
            let step = rng.below(steps as u64) as usize;
            let count = rng.range(1, num_configs as u64 - 1) as usize;
            let mut configs: Vec<usize> = Vec::new();
            while configs.len() < count {
                let c = rng.below(num_configs as u64) as usize;
                if !configs.contains(&c) {
                    configs.push(c);
                }
            }
            configs.sort_unstable();
            Some((step, configs))
        } else {
            None
        };

        Scenario { policy, kind, num_configs, landscape, corrupt, switch_faults, mask_at }
    }

    /// Serializes to the byte-exact repro JSON (floats as raw bits).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"cap_verify_scenario\":{SCENARIO_FORMAT},\"policy\":\"{}\",\"kind\":\"{}\",\"configs\":{},",
            self.policy.name(),
            self.kind.name(),
            self.num_configs
        ));
        s.push_str("\"landscape\":[");
        for (t, row) in self.landscape.iter().enumerate() {
            if t > 0 {
                s.push(',');
            }
            s.push('[');
            for (c, v) in row.iter().enumerate() {
                if c > 0 {
                    s.push(',');
                }
                s.push_str(&v.to_bits().to_string());
            }
            s.push(']');
        }
        s.push_str("],\"corrupt\":[");
        for (t, v) in self.corrupt.iter().enumerate() {
            if t > 0 {
                s.push(',');
            }
            match v {
                Some(x) => s.push_str(&x.to_bits().to_string()),
                None => s.push_str("null"),
            }
        }
        s.push_str("],\"switch_faults\":\"");
        for f in &self.switch_faults {
            s.push(match f {
                SwitchPlan::Succeed => 's',
                SwitchPlan::Transient => 't',
                SwitchPlan::Permanent => 'p',
            });
        }
        s.push_str("\",\"mask_at\":");
        match &self.mask_at {
            None => s.push_str("null"),
            Some((step, configs)) => {
                s.push_str(&format!("[{step},["));
                for (i, c) in configs.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&c.to_string());
                }
                s.push_str("]]");
            }
        }
        s.push('}');
        s
    }

    /// Parses and validates a repro JSON. Every structural deviation is a
    /// clean error: replay must never panic on a hand-edited file.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc: Value =
            serde_json::from_str(text).map_err(|e| format!("repro is not valid JSON: {e:?}"))?;
        let format = doc
            .get("cap_verify_scenario")
            .and_then(Value::as_u64)
            .ok_or("not a cap-verify repro file")?;
        if format != u64::from(SCENARIO_FORMAT) {
            return Err(format!(
                "repro format v{format}, this binary replays v{SCENARIO_FORMAT}"
            ));
        }
        let policy = doc
            .get("policy")
            .and_then(Value::as_str)
            .and_then(PolicyKind::parse)
            .ok_or("repro names an unknown policy")?;
        let kind = doc
            .get("kind")
            .and_then(Value::as_str)
            .and_then(StreamKind::parse)
            .ok_or("repro names an unknown stream kind")?;
        let num_configs =
            doc.get("configs").and_then(Value::as_usize).ok_or("repro lacks a config count")?;
        if num_configs == 0 {
            return Err("repro has zero configurations".into());
        }
        let landscape: Vec<Vec<f64>> = doc
            .get("landscape")
            .and_then(Value::as_array)
            .ok_or("repro lacks a landscape")?
            .iter()
            .map(|row| {
                row.as_array()
                    .filter(|r| r.len() == num_configs)
                    .ok_or("landscape row width differs from the config count")?
                    .iter()
                    .map(|v| v.as_u64().map(f64::from_bits).ok_or("landscape value is not raw bits"))
                    .collect::<Result<Vec<f64>, &str>>()
            })
            .collect::<Result<_, _>>()
            .map_err(str::to_string)?;
        if landscape.is_empty() {
            return Err("repro has an empty landscape".into());
        }
        let corrupt: Vec<Option<f64>> = doc
            .get("corrupt")
            .and_then(Value::as_array)
            .filter(|c| c.len() == landscape.len())
            .ok_or("corrupt plan length differs from the landscape")?
            .iter()
            .map(|v| match v {
                Value::Null => Ok(None),
                other => {
                    other.as_u64().map(|b| Some(f64::from_bits(b))).ok_or("corrupt value is not raw bits")
                }
            })
            .collect::<Result<_, _>>()
            .map_err(str::to_string)?;
        let switch_faults: Vec<SwitchPlan> = doc
            .get("switch_faults")
            .and_then(Value::as_str)
            .ok_or("repro lacks a switch-fault plan")?
            .chars()
            .map(|c| match c {
                's' => Ok(SwitchPlan::Succeed),
                't' => Ok(SwitchPlan::Transient),
                'p' => Ok(SwitchPlan::Permanent),
                _ => Err("switch-fault plan has an unknown outcome letter"),
            })
            .collect::<Result<_, _>>()
            .map_err(str::to_string)?;
        let mask_at = match doc.get("mask_at").ok_or("repro lacks a mask plan")? {
            Value::Null => None,
            v => {
                let pair = v.as_array().filter(|p| p.len() == 2).ok_or("mask plan is not [step, configs]")?;
                let step = pair[0].as_usize().ok_or("mask step is not an index")?;
                let configs: Vec<usize> = pair[1]
                    .as_array()
                    .ok_or("mask configs is not a list")?
                    .iter()
                    .map(|c| c.as_usize().ok_or("mask config is not an index"))
                    .collect::<Result<_, _>>()?;
                if configs.iter().any(|&c| c >= num_configs) || configs.len() >= num_configs {
                    return Err("mask plan retires out-of-range or all configurations".into());
                }
                Some((step, configs))
            }
        };
        Ok(Scenario { policy, kind, num_configs, landscape, corrupt, switch_faults, mask_at })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_is_bit_exact() {
        let mut rng = Rng::for_case(9, "scenario-roundtrip", 0);
        for (case, (kind, faulty)) in [
            (StreamKind::Queue, false),
            (StreamKind::Cache, true),
            (StreamKind::Queue, true),
        ]
        .into_iter()
        .enumerate()
        {
            let sc = Scenario::generate(&mut rng, PolicyKind::ALL[case % 4], kind, faulty);
            let back = Scenario::from_json(&sc.to_json()).expect("round trip");
            assert_eq!(sc, back);
            // And the serialized form itself is stable.
            assert_eq!(sc.to_json(), back.to_json());
        }
    }

    #[test]
    fn faulty_streams_eventually_carry_every_fault_flavor() {
        let mut rng = Rng::for_case(3, "scenario-faults", 0);
        let (mut saw_corrupt, mut saw_switch, mut saw_mask) = (false, false, false);
        for _ in 0..50 {
            let sc = Scenario::generate(&mut rng, PolicyKind::Confidence, StreamKind::Cache, true);
            saw_corrupt |= sc.corrupt.iter().any(Option::is_some);
            saw_switch |= sc.switch_faults.iter().any(|f| *f != SwitchPlan::Succeed);
            saw_mask |= sc.mask_at.is_some();
        }
        assert!(saw_corrupt && saw_switch && saw_mask);
    }

    #[test]
    fn clean_streams_carry_no_faults() {
        let mut rng = Rng::for_case(3, "scenario-clean", 0);
        for _ in 0..20 {
            let sc = Scenario::generate(&mut rng, PolicyKind::Hysteresis, StreamKind::Queue, false);
            assert!(!sc.is_faulty());
            assert!(sc.landscape.iter().flatten().all(|v| v.is_finite() && *v > 0.0));
        }
    }

    #[test]
    fn malformed_repro_files_error_cleanly() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"cap_verify_scenario\":99}",
            "{\"cap_verify_scenario\":1,\"policy\":\"optimal\"}",
        ] {
            assert!(Scenario::from_json(bad).is_err(), "{bad:?}");
        }
    }
}
