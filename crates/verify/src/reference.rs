//! Naive reference models of every [`cap_core`] configuration policy.
//!
//! Each model re-implements one policy's decision rule from its
//! *documented* semantics — straight-line code, plain loops, no shared
//! machinery with `cap-core` beyond the public decision types. The
//! differential driver ([`crate::diff`]) runs a reference model in
//! lockstep with the production policy over the same interval stream
//! and flags the first step where anything visible differs: the
//! decision, the interval counter, the quarantine set, safe mode, the
//! bit pattern of any TPI estimate, or the final decision/resilience
//! tallies.
//!
//! The arithmetic here intentionally uses the *same float expressions*
//! the documentation pins down (`prev + 0.5 * (tpi - prev)`,
//! `best < cur * (1.0 - gain)`): the oracle demands bit-equality, so
//! the reference must specify the arithmetic exactly, not merely
//! approximately.

use cap_core::manager::{ManagerDecision, ResilienceStats, SwitchOutcome};
use cap_core::policy::PolicyKind;
use cap_obs::DecisionCounts;
use std::cmp::Ordering;

/// EWMA weight every policy uses.
const ALPHA: f64 = 0.5;
/// Failed switches toward a configuration before quarantine (both the
/// simple policies' constant and the legacy resilience default).
const QUARANTINE_AFTER: u32 = 3;
/// Confidence defaults (`ConfidencePolicy::default_policy`).
const CONF_THRESHOLD: u32 = 2;
const CONF_HYSTERESIS: f64 = 0.03;
/// `PolicyConfig::new` default re-exploration period.
const EXPLORE_PERIOD: u64 = 40;
/// Hysteresis-policy defaults.
const HYST_MIN_GAIN: f64 = 0.05;
const HYST_SUSTAIN: u32 = 3;
const HYST_DWELL: u64 = 10;

/// Estimate/mask state shared by all four reference models.
#[derive(Debug, Clone)]
struct RefBase {
    estimates: Vec<Option<f64>>,
    masked: Vec<bool>,
    dead: Vec<bool>,
    fail_counts: Vec<u32>,
    intervals_seen: u64,
    counts: DecisionCounts,
    stats: ResilienceStats,
}

impl RefBase {
    fn new(n: usize) -> Self {
        RefBase {
            estimates: vec![None; n],
            masked: vec![false; n],
            dead: vec![false; n],
            fail_counts: vec![0; n],
            intervals_seen: 0,
            counts: DecisionCounts::default(),
            stats: ResilienceStats::default(),
        }
    }

    /// Reject invalid samples, fold survivors into the EWMA.
    fn update(&mut self, config: usize, tpi_ns: f64) {
        if !tpi_ns.is_finite() || tpi_ns <= 0.0 {
            self.stats.samples_rejected += 1;
            return;
        }
        self.estimates[config] = Some(match self.estimates[config] {
            Some(prev) => prev + ALPHA * (tpi_ns - prev),
            None => tpi_ns,
        });
    }

    /// First never-sampled unmasked configuration, in index order.
    fn first_unseen(&self) -> Option<usize> {
        (0..self.estimates.len()).find(|&i| self.estimates[i].is_none() && !self.masked[i])
    }

    /// Unmasked configuration with the lowest estimate; first index wins
    /// ties (total float order, so NaN estimates — impossible after
    /// sanitation — would still order deterministically).
    fn best(&self) -> Option<usize> {
        let mut win: Option<(usize, f64)> = None;
        for i in 0..self.estimates.len() {
            if self.masked[i] {
                continue;
            }
            if let Some(e) = self.estimates[i] {
                let better = match win {
                    None => true,
                    Some((_, w)) => e.total_cmp(&w) == Ordering::Less,
                };
                if better {
                    win = Some((i, e));
                }
            }
        }
        win.map(|(i, _)| i)
    }

    fn tally(&mut self, reason: &str) {
        self.counts.intervals += 1;
        match reason {
            "hold" => self.counts.stays += 1,
            "explore" => self.counts.explore_switches += 1,
            "resample" => self.counts.resample_switches += 1,
            "predicted" => self.counts.predicted_switches += 1,
            "pattern" => self.counts.pattern_switches += 1,
            "return-home" => self.counts.home_returns += 1,
            _ => self.counts.safe_mode_holds += 1,
        }
    }

    /// The simple policies' switch-outcome handling (no predictor
    /// bookkeeping).
    fn simple_outcome(&mut self, target: usize, outcome: SwitchOutcome) {
        if target >= self.estimates.len() {
            return;
        }
        match outcome {
            SwitchOutcome::Succeeded => self.fail_counts[target] = 0,
            SwitchOutcome::TransientFailure => {
                self.fail_counts[target] = self.fail_counts[target].saturating_add(1);
                if self.fail_counts[target] >= QUARANTINE_AFTER && !self.masked[target] {
                    self.masked[target] = true;
                    self.stats.quarantines += 1;
                }
            }
            SwitchOutcome::PermanentFailure => {
                if !self.masked[target] {
                    self.masked[target] = true;
                    self.stats.quarantines += 1;
                }
                self.dead[target] = true;
            }
        }
    }

    /// Hardware retirement; `Err(())` when nothing viable remains.
    fn mask_unavailable(&mut self, configs: &[usize]) -> Result<(), ()> {
        for &i in configs {
            if i < self.masked.len() {
                self.masked[i] = true;
                self.dead[i] = true;
            }
        }
        if self.dead.iter().all(|&d| d) {
            Err(())
        } else {
            Ok(())
        }
    }
}

/// A reference re-implementation of one policy's decision rule.
#[derive(Debug, Clone)]
pub struct RefPolicy {
    kind: PolicyKind,
    base: RefBase,
    /// `process-level`: the chosen-forever configuration.
    settled: Option<usize>,
    /// `hysteresis` streak state.
    candidate: Option<usize>,
    streak: u32,
    cooldown: u64,
    /// `confidence` predictor state.
    predicted: Option<usize>,
    confidence: u32,
    sampling_home: Option<usize>,
    safe_mode: bool,
}

impl RefPolicy {
    /// A reference model over `num_configs` configurations, tuned exactly
    /// like `PolicyConfig::new(kind)` (default knobs, legacy resilience).
    pub fn new(kind: PolicyKind, num_configs: usize) -> Self {
        RefPolicy {
            kind,
            base: RefBase::new(num_configs),
            settled: None,
            candidate: None,
            streak: 0,
            cooldown: 0,
            predicted: None,
            confidence: 0,
            sampling_home: None,
            safe_mode: false,
        }
    }

    /// Intervals observed so far.
    pub fn intervals_seen(&self) -> u64 {
        self.base.intervals_seen
    }

    /// Decision tally, field-compatible with the production policies.
    pub fn decision_counts(&self) -> DecisionCounts {
        self.base.counts
    }

    /// Resilience tally, field-compatible with the production policies.
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.base.stats
    }

    /// Currently quarantined configurations.
    pub fn quarantined_count(&self) -> usize {
        self.base.masked.iter().filter(|&&m| m).count()
    }

    /// Whether the watchdog (confidence only) has locked onto the safe
    /// configuration.
    pub fn in_safe_mode(&self) -> bool {
        self.safe_mode
    }

    /// Per-configuration estimate bits.
    pub fn estimates(&self) -> &[Option<f64>] {
        &self.base.estimates
    }

    /// Feeds one finished interval; returns the decision for the next.
    pub fn observe(&mut self, config: usize, tpi_ns: f64) -> ManagerDecision {
        if config >= self.base.estimates.len() {
            return ManagerDecision::Stay;
        }
        self.base.intervals_seen += 1;
        self.base.update(config, tpi_ns);
        let (decision, reason) = match self.kind {
            PolicyKind::ProcessLevel => self.decide_process_level(config),
            PolicyKind::IntervalGreedy => self.decide_greedy(config),
            PolicyKind::Hysteresis => self.decide_hysteresis(config),
            PolicyKind::Confidence => self.decide_confidence(config),
        };
        self.base.tally(reason);
        decision
    }

    fn decide_process_level(&mut self, config: usize) -> (ManagerDecision, &'static str) {
        if let Some(u) = self.base.first_unseen() {
            return (ManagerDecision::SwitchTo(u), "explore");
        }
        let stale = match self.settled {
            None => true,
            Some(s) => self.base.masked[s],
        };
        if stale {
            self.settled = self.base.best();
        }
        match self.settled {
            Some(s) if s != config => (ManagerDecision::SwitchTo(s), "predicted"),
            _ => (ManagerDecision::Stay, "hold"),
        }
    }

    fn decide_greedy(&mut self, config: usize) -> (ManagerDecision, &'static str) {
        if let Some(u) = self.base.first_unseen() {
            return (ManagerDecision::SwitchTo(u), "explore");
        }
        match self.base.best() {
            Some(b) if b != config => (ManagerDecision::SwitchTo(b), "predicted"),
            _ => (ManagerDecision::Stay, "hold"),
        }
    }

    fn decide_hysteresis(&mut self, config: usize) -> (ManagerDecision, &'static str) {
        if let Some(u) = self.base.first_unseen() {
            return (ManagerDecision::SwitchTo(u), "explore");
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            self.candidate = None;
            self.streak = 0;
            return (ManagerDecision::Stay, "hold");
        }
        let cur = self.base.estimates[config].unwrap_or(f64::INFINITY);
        let best = self.base.best();
        let wins = match best {
            Some(b) if b != config => match self.base.estimates[b] {
                Some(e) => e < cur * (1.0 - HYST_MIN_GAIN),
                None => false,
            },
            _ => false,
        };
        if wins {
            if self.candidate == best {
                self.streak = self.streak.saturating_add(1);
            } else {
                self.candidate = best;
                self.streak = 1;
            }
        } else {
            self.candidate = None;
            self.streak = 0;
        }
        if wins && self.streak >= HYST_SUSTAIN {
            if let Some(b) = self.candidate {
                self.candidate = None;
                self.streak = 0;
                self.cooldown = HYST_DWELL;
                return (ManagerDecision::SwitchTo(b), "predicted");
            }
        }
        (ManagerDecision::Stay, "hold")
    }

    fn decide_confidence(&mut self, config: usize) -> (ManagerDecision, &'static str) {
        if self.safe_mode {
            return (self.safe_decision(config), "safe-mode-hold");
        }
        // Legacy resilience: no probation, no outlier clamp, no watchdog.
        if let Some(u) = self.base.first_unseen() {
            return (ManagerDecision::SwitchTo(u), "explore");
        }
        let home = self.sampling_home.take();
        let Some(best) = self.base.best() else {
            // Every candidate quarantined: park on the safe config.
            self.safe_mode = true;
            self.base.stats.safe_mode_entries += 1;
            self.predicted = None;
            self.confidence = 0;
            self.sampling_home = None;
            return (self.safe_decision(config), "all-quarantined");
        };
        let anchor = home.unwrap_or(config);
        if EXPLORE_PERIOD > 0
            && self.base.intervals_seen.is_multiple_of(EXPLORE_PERIOD)
            && home.is_none()
        {
            let mut runner_up: Option<(usize, f64)> = None;
            for i in 0..self.base.estimates.len() {
                if i == config || self.base.masked[i] {
                    continue;
                }
                if let Some(e) = self.base.estimates[i] {
                    let better = match runner_up {
                        None => true,
                        Some((_, w)) => e.total_cmp(&w) == Ordering::Less,
                    };
                    if better {
                        runner_up = Some((i, e));
                    }
                }
            }
            if let Some((r, _)) = runner_up {
                self.sampling_home = Some(config);
                return (ManagerDecision::SwitchTo(r), "resample");
            }
        }
        let cur = self.base.estimates[anchor].unwrap_or(f64::INFINITY);
        let Some(best_est) = self.base.estimates[best] else {
            return (ManagerDecision::Stay, "hold");
        };
        let wins = best != anchor && best_est < cur * (1.0 - CONF_HYSTERESIS);
        if wins {
            if self.predicted == Some(best) {
                self.confidence = self.confidence.saturating_add(1);
            } else {
                self.predicted = Some(best);
                self.confidence = 1;
            }
        } else {
            self.predicted = None;
            self.confidence = 0;
        }
        if wins && self.confidence > CONF_THRESHOLD {
            self.confidence = 0;
            self.predicted = None;
            (ManagerDecision::SwitchTo(best), "predicted")
        } else if let Some(h) = home {
            if h == config {
                (ManagerDecision::Stay, "return-home")
            } else {
                (ManagerDecision::SwitchTo(h), "return-home")
            }
        } else {
            (ManagerDecision::Stay, "hold")
        }
    }

    /// Safe-mode holding pattern: sit on the safe configuration,
    /// redirected past permanently dead ones (safe config 0 by default).
    fn safe_decision(&self, config: usize) -> ManagerDecision {
        let safe = if !self.base.dead.first().copied().unwrap_or(true) {
            0
        } else {
            (0..self.base.dead.len()).find(|&i| !self.base.dead[i]).unwrap_or(0)
        };
        if safe == config || self.base.dead[safe] {
            ManagerDecision::Stay
        } else {
            ManagerDecision::SwitchTo(safe)
        }
    }

    /// Reports how a requested switch ended.
    pub fn record_switch_outcome(&mut self, target: usize, outcome: SwitchOutcome) {
        if target >= self.base.estimates.len() {
            return;
        }
        if self.kind == PolicyKind::Confidence {
            self.base.simple_outcome(target, outcome);
            if outcome != SwitchOutcome::Succeeded {
                // Predictor bookkeeping only the confidence manager has.
                if self.predicted == Some(target) {
                    self.predicted = None;
                    self.confidence = 0;
                }
                if self.sampling_home == Some(target) {
                    self.sampling_home = None;
                }
            }
        } else {
            self.base.simple_outcome(target, outcome);
        }
    }

    /// Retires configurations; `Err(())` when nothing viable remains.
    /// The unit error deliberately mirrors the production policies'
    /// error-or-not shape so the differential driver compares `is_err()`
    /// without inventing error semantics the reference doesn't model.
    #[allow(clippy::result_unit_err)]
    pub fn mask_unavailable(&mut self, configs: &[usize]) -> Result<(), ()> {
        self.base.mask_unavailable(configs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the reference like a runner would; return the visit path.
    fn drive(p: &mut RefPolicy, tpi: impl Fn(usize, u64) -> f64, steps: u64) -> Vec<usize> {
        let mut at = 0usize;
        let mut visits = Vec::new();
        for t in 0..steps {
            visits.push(at);
            if let ManagerDecision::SwitchTo(c) = p.observe(at, tpi(at, t)) {
                if c != at {
                    p.record_switch_outcome(c, SwitchOutcome::Succeeded);
                    at = c;
                }
            }
        }
        visits
    }

    #[test]
    fn reference_process_level_settles_on_the_best() {
        let mut p = RefPolicy::new(PolicyKind::ProcessLevel, 3);
        let visits = drive(&mut p, |c, _| [3.0, 1.0, 2.0][c], 30);
        assert_eq!(&visits[..4], &[0, 1, 2, 1]);
        assert!(visits[4..].iter().all(|&c| c == 1));
    }

    #[test]
    fn reference_confidence_needs_three_consecutive_wins() {
        let mut p = RefPolicy::new(PolicyKind::Confidence, 2);
        let _ = p.observe(0, 5.0);
        let _ = p.observe(1, 1.0);
        assert_eq!(p.observe(0, 5.0), ManagerDecision::Stay);
        assert_eq!(p.observe(0, 5.0), ManagerDecision::Stay);
        assert_eq!(p.observe(0, 5.0), ManagerDecision::SwitchTo(1));
    }

    #[test]
    fn reference_rejects_invalid_samples() {
        for kind in PolicyKind::ALL {
            let mut p = RefPolicy::new(kind, 2);
            let _ = p.observe(0, f64::NAN);
            let _ = p.observe(0, -1.0);
            assert_eq!(p.resilience_stats().samples_rejected, 2, "{kind}");
            assert_eq!(p.estimates()[0], None, "{kind}");
        }
    }
}
