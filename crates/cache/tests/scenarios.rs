//! Directed scenario tests of the exclusive adaptive hierarchy: access
//! patterns with fully analyzable outcomes, plus property tests of the
//! structural invariants.

use cap_cache::config::Boundary;
use cap_cache::hierarchy::{AdaptiveCacheHierarchy, Level};
use cap_cache::inclusive::InclusiveCacheHierarchy;
use cap_cache::stats::AccessOutcome;
use cap_cache::tlb::{AdaptiveTlb, TlbConfig, TlbOutcome, PAGE_BYTES, TOTAL_ENTRIES};
use cap_trace::mem::{AccessKind, MemRef};
use proptest::prelude::*;

fn rd(addr: u64) -> MemRef {
    MemRef { addr, kind: AccessKind::Read }
}

fn wr(addr: u64) -> MemRef {
    MemRef { addr, kind: AccessKind::Write }
}

/// Addresses mapping to set 0: multiples of sets*block = 128*32 = 4096.
fn set0(way: u64) -> u64 {
    way * 4096
}

#[test]
fn exclusive_swap_chain() {
    // Fill L1 (2 ways at boundary 1), then walk a chain of L2
    // promotions: every re-access of a demoted block must (a) hit in L2,
    // (b) land it in L1, (c) demote exactly one other block.
    let mut c = AdaptiveCacheHierarchy::isca98(Boundary::new(1).unwrap());
    for i in 0..8 {
        assert_eq!(c.access(rd(set0(i))), AccessOutcome::Miss);
    }
    // 8 blocks live: 2 in L1, 6 in L2 (capacity 32 ways total in set 0).
    assert_eq!(c.resident_blocks(), 8);
    let l1_count = (0..8).filter(|&i| c.probe(set0(i)) == Some(Level::L1)).count();
    assert_eq!(l1_count, 2);
    for round in 0..20 {
        let target = set0(round % 8);
        let outcome = c.access(rd(target));
        assert_ne!(outcome, AccessOutcome::Miss, "round {round}: blocks never leave the set");
        assert_eq!(c.probe(target), Some(Level::L1), "accessed block is now L1");
        let l1_count = (0..8).filter(|&i| c.probe(set0(i)) == Some(Level::L1)).count();
        assert_eq!(l1_count, 2, "L1 way count is invariant");
        assert!(c.check_exclusive());
    }
}

#[test]
fn associativity_grows_with_boundary() {
    // 6 conflicting blocks: at boundary 1 (2-way L1) they churn through
    // L2; at boundary 3 (6-way L1) they all fit as L1 hits.
    let run = |k: usize| {
        let mut c = AdaptiveCacheHierarchy::isca98(Boundary::new(k).unwrap());
        for _ in 0..5 {
            for i in 0..6 {
                c.access(rd(set0(i)));
            }
        }
        c.reset_stats();
        for _ in 0..5 {
            for i in 0..6 {
                c.access(rd(set0(i)));
            }
        }
        c.stats()
    };
    let narrow = run(1);
    let wide = run(3);
    assert_eq!(wide.l1_hits, wide.refs, "6 blocks fit a 6-way L1");
    assert!(narrow.l2_hits > 0, "but churn a 2-way L1");
    assert_eq!(narrow.misses, 0, "all stay within the structure");
}

#[test]
fn writeback_only_for_dirty_evictions() {
    let mut c = AdaptiveCacheHierarchy::isca98(Boundary::new(1).unwrap());
    // 32 ways per set: the 33rd distinct block evicts the LRU.
    for i in 0..33 {
        c.access(rd(set0(i)));
    }
    assert_eq!(c.stats().writebacks, 0, "clean evictions are silent");

    let mut c = AdaptiveCacheHierarchy::isca98(Boundary::new(1).unwrap());
    c.access(wr(set0(0)));
    for i in 1..33 {
        c.access(rd(set0(i)));
    }
    assert_eq!(c.stats().writebacks, 1, "the dirty block was evicted last");
}

#[test]
fn boundary_shrink_then_grow_roundtrip_preserves_hits() {
    // Train at a large boundary, bounce to a small one and back: the
    // working set is still resident and hits immediately.
    let mut c = AdaptiveCacheHierarchy::isca98(Boundary::new(8).unwrap());
    for i in 0..256u64 {
        c.access(rd(i * 32));
    }
    c.set_boundary(Boundary::new(1).unwrap());
    c.set_boundary(Boundary::new(8).unwrap());
    c.reset_stats();
    for i in 0..256u64 {
        c.access(rd(i * 32));
    }
    assert_eq!(c.stats().l1_hits, 256);
}

#[test]
fn tlb_backup_section_behaves_like_l2() {
    let mut t = AdaptiveTlb::new(TlbConfig::new(16).unwrap());
    // 20 pages: 16 in primary, 4 demoted.
    for p in 0..20u64 {
        assert_eq!(t.access(p * PAGE_BYTES), TlbOutcome::Miss);
    }
    assert_eq!(t.resident(), 20);
    let s0 = t.stats();
    assert_eq!(s0.misses, 20);
    // Touch everything again: no page walk may occur.
    for p in 0..20u64 {
        let o = t.access(p * PAGE_BYTES);
        assert_ne!(o, TlbOutcome::Miss, "page {p}");
    }
    assert_eq!(t.stats().misses, 20, "no new walks");
    assert!(t.stats().backup_hits >= 4, "the demoted pages came from backup");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any single-set access sequence, the set never holds more
    /// blocks than its total ways, exclusion holds, and outcomes are
    /// deterministic under replay.
    #[test]
    fn single_set_invariants(ways in prop::collection::vec(0u64..64, 50..300), k in 1usize..16) {
        let run = || {
            let mut c = AdaptiveCacheHierarchy::isca98(Boundary::new(k).unwrap());
            let outs: Vec<AccessOutcome> = ways.iter().map(|&w| c.access(rd(set0(w)))).collect();
            (outs, c.contents_snapshot(), c.stats())
        };
        let (outs_a, snap_a, stats_a) = run();
        let (outs_b, snap_b, stats_b) = run();
        prop_assert_eq!(outs_a, outs_b);
        prop_assert_eq!(snap_a.clone(), snap_b);
        prop_assert_eq!(stats_a, stats_b);
        prop_assert!(snap_a.len() <= 32);
        prop_assert!(stats_a.is_consistent());
    }

    /// TLB exclusion and capacity hold for arbitrary page streams and
    /// split moves.
    #[test]
    fn tlb_invariants(
        pages in prop::collection::vec(0u64..400, 100..500),
        splits in prop::collection::vec(1usize..9, 1..4),
    ) {
        let mut t = AdaptiveTlb::new(TlbConfig::new(64).unwrap());
        let chunk = (pages.len() / splits.len()).max(1);
        for (i, &p) in pages.iter().enumerate() {
            if i % chunk == 0 {
                t.set_config(TlbConfig::new(splits[(i / chunk) % splits.len()] * 16).unwrap());
            }
            t.access(p * PAGE_BYTES);
        }
        prop_assert!(t.check_exclusive());
        prop_assert!(t.resident() <= TOTAL_ENTRIES);
        let s = t.stats();
        prop_assert_eq!(s.lookups as usize, pages.len());
        prop_assert_eq!(s.primary_hits + s.backup_hits + s.misses, s.lookups);
    }

    /// The inclusive strawman keeps inclusion under arbitrary traffic and
    /// boundary moves, and never outperforms the exclusive design's
    /// unique capacity on a resident working set.
    #[test]
    fn inclusive_invariants(
        ops in prop::collection::vec(0u64..4096, 100..400),
        boundaries in prop::collection::vec(1usize..9, 1..4),
    ) {
        let mut inc = InclusiveCacheHierarchy::isca98(Boundary::new(2).unwrap());
        let chunk = (ops.len() / boundaries.len()).max(1);
        for (i, &blk) in ops.iter().enumerate() {
            if i % chunk == 0 {
                inc.set_boundary(Boundary::new(boundaries[(i / chunk) % boundaries.len()]).unwrap());
            }
            inc.access(rd(blk * 32));
        }
        prop_assert!(inc.check_inclusive());
        prop_assert!(inc.stats().is_consistent());
        // Unique capacity can never exceed the L2's ways per set.
        let l2_ways = 32 - 2 * inc.boundary().increments();
        prop_assert!(inc.resident_blocks() <= 128 * l2_ways);
    }

    /// A second touch of the same address is always an L1 hit, at any
    /// boundary, regardless of history.
    #[test]
    fn immediate_reuse_hits(history in prop::collection::vec(0u64..100_000, 0..200), addr in 0u64..100_000, k in 1usize..16) {
        let mut c = AdaptiveCacheHierarchy::isca98(Boundary::new(k).unwrap());
        for &h in &history {
            c.access(rd(h * 32));
        }
        c.access(rd(addr * 32));
        prop_assert_eq!(c.access(rd(addr * 32)), AccessOutcome::L1Hit);
    }
}
