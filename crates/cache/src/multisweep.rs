//! Single-pass multi-boundary sweeps (Mattson stack-distance counting).
//!
//! The legacy [`crate::sim::sweep`] replays the same address stream once
//! per boundary — 8 full traversals for the paper's Figure 7. But the
//! adaptive structure's replacement discipline makes every boundary's
//! counters recoverable from **one** traversal:
//!
//! Per set, the hierarchy maintains a true-LRU stack over all resident
//! blocks, *independent of where the boundary sits*:
//!
//! * the L1 region always holds the `2k` most recently referenced blocks
//!   of the set (an L1 hit refreshes recency; an L2 hit promotes the
//!   referenced block and demotes the L1's LRU; a miss fills over the L1's
//!   LRU, demoting it),
//! * blocks in the L2 region are never referenced while resident (a
//!   reference immediately promotes them out), so their recency order is
//!   exactly their demotion order — and blocks are demoted in global LRU
//!   order, so the L2-region victim chosen on a full-set miss is the
//!   set's globally least-recently-used block,
//! * a set evicts if and only if it is full (the L1 fills before any
//!   demotion can populate the L2 region), which depends only on the
//!   number of distinct blocks mapped to the set — not on the boundary,
//! * a block's dirty bit means "stored to since it entered the structure",
//!   which is likewise boundary-independent.
//!
//! Consequently a reference's outcome at boundary `k` is a pure function
//! of its **stack distance** `d` (its block's 1-based position in the
//! set's recency order, counted over all ways): an L1 hit when
//! `d <= 2k`, an L2 hit when `2k < d <= ways`, and a miss when the block
//! is not resident at all — the same classification for every boundary at
//! once. Misses, writebacks and total references are shared outright.
//! One traversal therefore yields bit-identical [`CacheStats`] — and,
//! via the shared [`evaluate`] arithmetic, bit-identical TPI — for every
//! boundary, which is what the differential properties in `cap-verify`
//! assert at scale.
//!
//! **Where the argument holds, and where the fallback engages.** The
//! reasoning above needs (a) a freshly constructed, non-degraded
//! structure — true for every sweep, which builds a pristine hierarchy
//! per leg — and (b) boundaries that leave at least one increment of L2
//! (`k < increments`), so the legacy path's degraded-operation clamp
//! never fires. [`sweep_one_pass`] checks (b) per request and falls back
//! to the legacy multi-traversal [`sweep`] when any boundary reaches the
//! clamped regime (possible only when a 16-increment [`Boundary`] is
//! applied to a smaller custom geometry). Counters outside
//! [`SweepPoint`] — the per-way hit histograms used by the §4.1
//! asynchronous-design analysis — are tied to physical way positions and
//! cannot be recovered from stack distances; callers needing them must
//! run the per-boundary path.

use crate::config::Boundary;
use crate::error::CacheError;
use crate::perf::{evaluate, PerfParams};
use crate::sim::{sweep, SweepPoint};
use crate::stats::CacheStats;
use cap_timing::cacti::{CacheGeometry, CacheTimingModel};
use cap_trace::mem::{AccessKind, AddressStream};

#[derive(Debug, Clone, Copy)]
struct StackBlock {
    tag: u64,
    dirty: bool,
}

/// The outcome-relevant record of one traversal: per-depth hit counts
/// plus the boundary-independent counters.
///
/// `depth_hits[d - 1]` counts references that hit at stack distance `d`
/// (1-based, over all ways of the set). [`StackProfile::stats_at`] folds
/// the histogram into the [`CacheStats`] of any L1 way count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackProfile {
    depth_hits: Vec<u64>,
    refs: u64,
    misses: u64,
    writebacks: u64,
}

impl StackProfile {
    /// Total references traversed.
    pub fn refs(&self) -> u64 {
        self.refs
    }

    /// The counters a per-boundary simulation with `l1_ways` L1 way
    /// positions would have produced.
    pub fn stats_at(&self, l1_ways: usize) -> CacheStats {
        let split = l1_ways.min(self.depth_hits.len());
        let l1_hits: u64 = self.depth_hits[..split].iter().sum();
        let l2_hits: u64 = self.depth_hits[split..].iter().sum();
        CacheStats {
            refs: self.refs,
            l1_hits,
            l2_hits,
            misses: self.misses,
            writebacks: self.writebacks,
        }
    }
}

/// Runs `refs` references through per-set LRU stacks, producing the
/// stack-distance histogram and the boundary-independent counters.
///
/// One call replaces one full-trace simulation per boundary; the result
/// answers every boundary via [`StackProfile::stats_at`].
pub fn stack_profile<S: AddressStream>(
    mut stream: S,
    refs: u64,
    geometry: &CacheGeometry,
) -> StackProfile {
    let total_ways = geometry.increments * geometry.increment_assoc;
    let sets = geometry.sets() as u64;
    let block_bytes = geometry.block_bytes as u64;
    let mut stacks: Vec<Vec<StackBlock>> =
        (0..sets).map(|_| Vec::with_capacity(total_ways)).collect();
    let mut profile = StackProfile {
        depth_hits: vec![0; total_ways],
        refs,
        misses: 0,
        writebacks: 0,
    };

    for _ in 0..refs {
        let r = stream.next_ref();
        let block = r.addr / block_bytes;
        let stack = &mut stacks[(block % sets) as usize];
        let tag = block / sets;
        let dirty = r.kind == AccessKind::Write;
        match stack.iter().position(|b| b.tag == tag) {
            Some(depth) => {
                profile.depth_hits[depth] += 1;
                let mut hit = stack.remove(depth);
                hit.dirty |= dirty;
                stack.insert(0, hit);
            }
            None => {
                profile.misses += 1;
                if stack.len() == total_ways {
                    let evicted = stack.pop().expect("full stack pops its LRU");
                    if evicted.dirty {
                        profile.writebacks += 1;
                    }
                }
                stack.insert(0, StackBlock { tag, dirty });
            }
        }
    }
    profile
}

/// Whether the one-pass engine reproduces the legacy path bit-for-bit
/// for every requested boundary: each boundary must leave at least one
/// increment on the L2 side of this geometry (see the
/// [module documentation](self) for why the clamped regime is excluded).
pub fn one_pass_supported(geometry: &CacheGeometry, boundaries: &[Boundary]) -> bool {
    boundaries.iter().all(|b| b.increments() < geometry.increments)
}

/// Simulates every boundary from a single traversal of `stream` — the
/// one-pass equivalent of [`sweep`], bit-identical on every
/// [`SweepPoint`].
///
/// # Errors
///
/// Propagates timing-model errors for out-of-range boundaries.
pub fn multisweep<S: AddressStream>(
    stream: S,
    refs: u64,
    boundaries: impl IntoIterator<Item = Boundary>,
    timing: &CacheTimingModel,
    params: PerfParams,
) -> Result<Vec<SweepPoint>, CacheError> {
    let geometry = timing.geometry();
    let profile = stack_profile(stream, refs, geometry);
    boundaries
        .into_iter()
        .map(|boundary| {
            let l1_ways = boundary.increments().min(geometry.increments) * geometry.increment_assoc;
            let stats = profile.stats_at(l1_ways);
            let tpi = evaluate(&stats, boundary, timing, params)?;
            Ok(SweepPoint { boundary, stats, tpi })
        })
        .collect()
}

/// Drop-in replacement for [`sweep`]: uses the one-pass engine when
/// [`one_pass_supported`] holds for every requested boundary, and falls
/// back to the legacy per-boundary traversal otherwise. Output is
/// byte-identical either way.
///
/// # Errors
///
/// Propagates timing-model errors for out-of-range boundaries.
pub fn sweep_one_pass<S, F>(
    mut make_stream: F,
    refs: u64,
    boundaries: impl IntoIterator<Item = Boundary>,
    timing: &CacheTimingModel,
    params: PerfParams,
) -> Result<Vec<SweepPoint>, CacheError>
where
    S: AddressStream,
    F: FnMut() -> S,
{
    let boundaries: Vec<Boundary> = boundaries.into_iter().collect();
    if one_pass_supported(timing.geometry(), &boundaries) {
        multisweep(make_stream(), refs, boundaries, timing, params)
    } else {
        sweep(make_stream, refs, boundaries, timing, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::AdaptiveCacheHierarchy;
    use crate::sim::{run, sweep_point};
    use cap_timing::Technology;
    use cap_trace::mem::{Region, RegionMix};

    fn timing() -> CacheTimingModel {
        CacheTimingModel::isca98(Technology::isca98_evaluation())
    }

    fn mixed_stream(seed: u64) -> RegionMix {
        RegionMix::builder(seed)
            .region(Region::sequential_loop(0, 24 * 1024, 32), 3.0)
            .region(Region::random(1 << 22, 192 * 1024), 2.0)
            .region(Region::pointer_chase(1 << 24, 64 * 1024), 1.0)
            .build()
            .unwrap()
    }

    fn all_boundaries() -> Vec<Boundary> {
        (1..16).map(|k| Boundary::new(k).unwrap()).collect()
    }

    #[test]
    fn matches_legacy_sweep_bit_for_bit_on_all_16_boundaries() {
        let pristine = mixed_stream(11);
        let refs = 60_000;
        let params = PerfParams::isca98(3.0);
        let legacy = sweep(|| pristine.clone(), refs, all_boundaries(), &timing(), params).unwrap();
        let onepass =
            multisweep(pristine.clone(), refs, all_boundaries(), &timing(), params).unwrap();
        assert_eq!(legacy.len(), onepass.len());
        for (a, b) in legacy.iter().zip(&onepass) {
            assert_eq!(a.boundary, b.boundary);
            assert_eq!(a.stats, b.stats, "counters differ at {}", a.boundary);
            assert_eq!(
                a.tpi.total_tpi().value().to_bits(),
                b.tpi.total_tpi().value().to_bits(),
                "TPI bits differ at {}",
                a.boundary
            );
            assert_eq!(a.tpi.miss_tpi.value().to_bits(), b.tpi.miss_tpi.value().to_bits());
        }
    }

    #[test]
    fn matches_legacy_on_write_heavy_thrashing_stream() {
        // Heavy capacity pressure with many stores exercises the shared
        // writeback counter.
        let pristine = RegionMix::builder(5)
            .region(Region::random(0, 512 * 1024).with_write_frac(0.9), 1.0)
            .build()
            .unwrap();
        let params = PerfParams::isca98(2.5);
        let legacy = sweep(|| pristine.clone(), 40_000, all_boundaries(), &timing(), params).unwrap();
        let onepass =
            multisweep(pristine.clone(), 40_000, all_boundaries(), &timing(), params).unwrap();
        for (a, b) in legacy.iter().zip(&onepass) {
            assert_eq!(a.stats, b.stats, "counters differ at {}", a.boundary);
            assert!(a.stats.writebacks > 0, "stress stream must write back");
        }
    }

    #[test]
    fn stack_profile_counters_are_consistent() {
        let p = stack_profile(mixed_stream(3), 30_000, &CacheGeometry::isca98());
        assert_eq!(p.refs(), 30_000);
        let hits: u64 = p.depth_hits.iter().sum();
        assert_eq!(hits + p.misses, 30_000);
        for l1_ways in [2usize, 16, 30] {
            assert!(p.stats_at(l1_ways).is_consistent());
        }
    }

    #[test]
    fn deeper_split_never_decreases_l1_hits() {
        let p = stack_profile(mixed_stream(9), 30_000, &CacheGeometry::isca98());
        let mut prev = 0;
        for l1_ways in 1..=32 {
            let s = p.stats_at(l1_ways);
            assert!(s.l1_hits >= prev, "l1 hits must be monotone in the split");
            assert_eq!(s.l1_hits + s.l2_hits, 30_000 - s.misses);
            prev = s.l1_hits;
        }
    }

    #[test]
    fn profile_agrees_with_one_simulated_boundary() {
        // Cross-check stats_at against an actual hierarchy run, not just
        // the sweep wrapper.
        let geometry = CacheGeometry::isca98();
        let p = stack_profile(mixed_stream(7), 50_000, &geometry);
        for k in [1usize, 4, 8, 15] {
            let boundary = Boundary::new(k).unwrap();
            let mut cache = AdaptiveCacheHierarchy::with_geometry(geometry, boundary);
            let simulated = run(mixed_stream(7), 50_000, &mut cache);
            assert_eq!(p.stats_at(k * 2), simulated, "boundary {k}");
        }
    }

    #[test]
    fn fallback_engages_on_clamped_custom_geometry() {
        // A 16-increment boundary applied to a 4-increment geometry
        // reaches the legacy path's clamped regime: sweep_one_pass must
        // detect it, route through the legacy engine, and agree with it —
        // here both surface the same timing-model rejection.
        let mut geometry = CacheGeometry::isca98();
        geometry.increments = 4;
        let timing = CacheTimingModel::new(geometry, Technology::isca98_evaluation()).unwrap();
        let boundaries = vec![Boundary::new(2).unwrap(), Boundary::new(6).unwrap()];
        assert!(!one_pass_supported(&geometry, &boundaries));
        let pristine = mixed_stream(2);
        let params = PerfParams::isca98(3.0);
        let legacy =
            sweep(|| pristine.clone(), 20_000, boundaries.clone(), &timing, params).unwrap_err();
        let routed =
            sweep_one_pass(|| pristine.clone(), 20_000, boundaries, &timing, params).unwrap_err();
        assert_eq!(legacy, routed);

        // In-range boundaries on the same custom geometry stay on the
        // one-pass engine and still match the legacy counters.
        let ok = vec![Boundary::for_geometry(1, &geometry).unwrap(), Boundary::for_geometry(3, &geometry).unwrap()];
        assert!(one_pass_supported(&geometry, &ok));
        let legacy = sweep(|| pristine.clone(), 20_000, ok.clone(), &timing, params).unwrap();
        let onepass = sweep_one_pass(|| pristine.clone(), 20_000, ok, &timing, params).unwrap();
        for (a, b) in legacy.iter().zip(&onepass) {
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn one_pass_supported_accepts_paper_setup() {
        let boundaries: Vec<Boundary> = Boundary::paper_sweep().collect();
        assert!(one_pass_supported(&CacheGeometry::isca98(), &boundaries));
        assert!(one_pass_supported(&CacheGeometry::isca98(), &all_boundaries()));
    }

    #[test]
    fn sweep_one_pass_matches_sweep_point_per_leg() {
        let pristine = mixed_stream(13);
        let params = PerfParams::isca98(3.0);
        let points =
            sweep_one_pass(|| pristine.clone(), 30_000, Boundary::paper_sweep(), &timing(), params)
                .unwrap();
        assert_eq!(points.len(), 8);
        for p in &points {
            let legacy =
                sweep_point(pristine.clone(), 30_000, p.boundary, &timing(), params).unwrap();
            assert_eq!(p.stats, legacy.stats);
            assert_eq!(
                p.tpi.total_tpi().value().to_bits(),
                legacy.tpi.total_tpi().value().to_bits()
            );
        }
    }
}
