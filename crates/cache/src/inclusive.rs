//! The inclusive-mapping strawman the paper's design rejects.
//!
//! Paper §5.2: *"Two-level exclusive caching avoids the situation where
//! two copies of the same cache block that were previously located
//! separately in L1 and L2, are upon reconfiguration located in the same
//! cache due to a redefinition of the L1/L2 boundary."*
//!
//! This module implements the rejected alternative so the ablation bench
//! can quantify the argument: a conventional **inclusive** two-level
//! hierarchy over the same physical budget, where the L1 is a subset of
//! the L2. Because a block may live in both levels at once, a boundary
//! move can only be made safe by **flushing the L1** (every L1 block also
//! exists in L2, so the flush loses recency but no data; dirty lines are
//! written through to the L2 copy).
//!
//! The comparison is deliberately apples-to-apples: same total silicon
//! (the L1 *duplicates* part of the 128 KB, so the inclusive design's
//! unique capacity is smaller), same increment timing, same stats.

use crate::config::Boundary;
use crate::stats::{AccessOutcome, CacheStats};
use cap_timing::cacti::CacheGeometry;
use cap_trace::mem::{AccessKind, MemRef};

#[derive(Debug, Clone, Copy)]
struct Block {
    tag: u64,
    dirty: bool,
    recency: u64,
}

#[derive(Debug, Clone, Default)]
struct InclusiveSet {
    l1: Vec<Option<Block>>,
    l2: Vec<Option<Block>>,
}

/// A conventional inclusive two-level hierarchy over the paper's
/// 128 KB / 16-increment budget: `boundary` increments serve as L1, the
/// remaining increments as L2, and inclusion (L1 ⊆ L2) means every L1
/// block *duplicates* an L2 block — the design's unique capacity is only
/// the L2's, the capacity tax the exclusive design avoids.
#[derive(Debug, Clone)]
pub struct InclusiveCacheHierarchy {
    geometry: CacheGeometry,
    boundary: Boundary,
    sets: Vec<InclusiveSet>,
    clock: u64,
    stats: CacheStats,
    flushes: u64,
}

impl InclusiveCacheHierarchy {
    /// Creates the hierarchy at the given boundary.
    pub fn isca98(boundary: Boundary) -> Self {
        let geometry = CacheGeometry::isca98();
        let l2_ways = (geometry.increments - boundary.increments()) * geometry.increment_assoc;
        let sets = (0..geometry.sets())
            .map(|_| InclusiveSet {
                l1: vec![None; boundary.l1_assoc()],
                l2: vec![None; l2_ways],
            })
            .collect();
        InclusiveCacheHierarchy { geometry, boundary, sets, clock: 0, stats: CacheStats::new(), flushes: 0 }
    }

    /// The current boundary.
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Boundary flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Clears the counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
    }

    /// Moves the boundary. Inclusion forces an L1 flush: dirty lines are
    /// written through to their L2 copies, then the L1 is emptied and
    /// resized — the recency the paper's exclusive design preserves is
    /// lost here.
    pub fn set_boundary(&mut self, boundary: Boundary) {
        if boundary == self.boundary {
            return;
        }
        let l1_ways = boundary.l1_assoc();
        let l2_ways = (self.geometry.increments - boundary.increments()) * self.geometry.increment_assoc;
        let mut writebacks = 0;
        for set in &mut self.sets {
            for slot in set.l1.iter_mut() {
                if let Some(b) = slot.take() {
                    if b.dirty {
                        if let Some(l2b) =
                            set.l2.iter_mut().flatten().find(|l2b| l2b.tag == b.tag)
                        {
                            l2b.dirty = true;
                        }
                    }
                }
            }
            set.l1 = vec![None; l1_ways];
            // Resize the L2: a shrink evicts the least recent overflow.
            if l2_ways >= set.l2.len() {
                set.l2.resize(l2_ways, None);
            } else {
                let mut blocks: Vec<Block> = set.l2.iter().flatten().copied().collect();
                blocks.sort_by_key(|b| std::cmp::Reverse(b.recency));
                writebacks += blocks.iter().skip(l2_ways).filter(|b| b.dirty).count() as u64;
                blocks.truncate(l2_ways);
                set.l2 = (0..l2_ways).map(|i| blocks.get(i).copied()).collect();
            }
        }
        self.stats.writebacks += writebacks;
        self.boundary = boundary;
        self.flushes += 1;
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn victim(ways: &[Option<Block>]) -> usize {
        let mut lru = 0;
        let mut lru_rec = u64::MAX;
        for (i, w) in ways.iter().enumerate() {
            match w {
                None => return i,
                Some(b) if b.recency < lru_rec => {
                    lru_rec = b.recency;
                    lru = i;
                }
                Some(_) => {}
            }
        }
        lru
    }

    /// Performs one reference.
    pub fn access(&mut self, r: MemRef) -> AccessOutcome {
        let block_no = r.addr / self.geometry.block_bytes as u64;
        let sets = self.geometry.sets() as u64;
        let (set_idx, tag) = ((block_no % sets) as usize, block_no / sets);
        let dirty = r.kind == AccessKind::Write;
        let now = self.tick();
        let set = &mut self.sets[set_idx];

        let outcome = if let Some(b) = set.l1.iter_mut().flatten().find(|b| b.tag == tag) {
            b.recency = now;
            b.dirty |= dirty;
            // Inclusion: refresh the L2 copy's recency too.
            if let Some(l2b) = set.l2.iter_mut().flatten().find(|b| b.tag == tag) {
                l2b.recency = now;
            }
            AccessOutcome::L1Hit
        } else if set.l2.iter().flatten().any(|b| b.tag == tag) {
            // L2 hit: copy into L1 (the L2 copy stays — inclusion).
            if let Some(l2b) = set.l2.iter_mut().flatten().find(|b| b.tag == tag) {
                l2b.recency = now;
                l2b.dirty |= dirty;
            }
            let v = Self::victim(&set.l1);
            if let Some(evicted) = set.l1[v].take() {
                if evicted.dirty {
                    if let Some(l2b) = set.l2.iter_mut().flatten().find(|b| b.tag == evicted.tag) {
                        l2b.dirty = true;
                    }
                }
            }
            set.l1[v] = Some(Block { tag, dirty, recency: now });
            AccessOutcome::L2Hit
        } else {
            // Miss: fill both levels. The L2 eviction must invalidate any
            // L1 copy of the victim (back-invalidation).
            let v2 = Self::victim(&set.l2);
            if let Some(evicted) = set.l2[v2].take() {
                if evicted.dirty {
                    self.stats.writebacks += 1;
                }
                for slot in set.l1.iter_mut() {
                    if matches!(slot, Some(b) if b.tag == evicted.tag) {
                        *slot = None;
                    }
                }
            }
            set.l2[v2] = Some(Block { tag, dirty, recency: now });
            let v1 = Self::victim(&set.l1);
            if let Some(evicted) = set.l1[v1].take() {
                if evicted.dirty {
                    if let Some(l2b) = set.l2.iter_mut().flatten().find(|b| b.tag == evicted.tag) {
                        l2b.dirty = true;
                    }
                }
            }
            set.l1[v1] = Some(Block { tag, dirty, recency: now });
            AccessOutcome::Miss
        };
        self.stats.record(outcome);
        outcome
    }

    /// Verifies inclusion: every L1 block exists in L2.
    pub fn check_inclusive(&self) -> bool {
        self.sets.iter().all(|set| {
            set.l1
                .iter()
                .flatten()
                .all(|b| set.l2.iter().flatten().any(|l2b| l2b.tag == b.tag))
        })
    }

    /// Unique resident blocks (inclusion means the L2 view is the truth).
    pub fn resident_blocks(&self) -> usize {
        self.sets.iter().map(|s| s.l2.iter().flatten().count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rd(addr: u64) -> MemRef {
        MemRef { addr, kind: AccessKind::Read }
    }

    fn wr(addr: u64) -> MemRef {
        MemRef { addr, kind: AccessKind::Write }
    }

    #[test]
    fn inclusion_maintained_under_traffic() {
        let mut c = InclusiveCacheHierarchy::isca98(Boundary::new(2).unwrap());
        let mut x: u64 = 7;
        for _ in 0..30_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (x >> 16) % (256 * 1024);
            c.access(if x & 1 == 0 { rd(addr) } else { wr(addr) });
        }
        assert!(c.check_inclusive());
        assert!(c.stats().is_consistent());
    }

    #[test]
    fn miss_then_hits_both_levels() {
        let mut c = InclusiveCacheHierarchy::isca98(Boundary::new(1).unwrap());
        assert_eq!(c.access(rd(0)), AccessOutcome::Miss);
        assert_eq!(c.access(rd(0)), AccessOutcome::L1Hit);
        // Push it out of the 2-way L1 with two conflicting blocks.
        c.access(rd(4096));
        c.access(rd(8192));
        assert_eq!(c.access(rd(0)), AccessOutcome::L2Hit, "still in the inclusive L2");
    }

    #[test]
    fn boundary_move_flushes_l1() {
        let mut c = InclusiveCacheHierarchy::isca98(Boundary::new(2).unwrap());
        for i in 0..64u64 {
            c.access(rd(i * 32));
        }
        c.set_boundary(Boundary::new(4).unwrap());
        assert_eq!(c.flushes(), 1);
        assert!(c.check_inclusive());
        c.reset_stats();
        // Everything is still L2-resident but nothing is L1-resident.
        for i in 0..64u64 {
            assert_eq!(c.access(rd(i * 32)), AccessOutcome::L2Hit, "block {i}");
        }
    }

    #[test]
    fn dirty_data_survives_the_flush() {
        let mut c = InclusiveCacheHierarchy::isca98(Boundary::new(2).unwrap());
        c.access(wr(0));
        c.set_boundary(Boundary::new(6).unwrap());
        // The dirty line was written through to L2, not lost; evicting it
        // later must produce a writeback. Fill set 0 far past its L2 ways.
        for i in 1..64u64 {
            c.access(rd(i * 4096));
        }
        assert!(c.stats().writebacks >= 1);
    }

    #[test]
    fn exclusive_design_has_more_unique_capacity() {
        // The same sweep through 128 KB: exclusion holds all of it,
        // inclusion only the L2 image (the L1 is duplicated), so the
        // exclusive design misses less on re-sweep.
        use crate::hierarchy::AdaptiveCacheHierarchy;
        let blocks = 128 * 1024 / 32;
        let mut ex = AdaptiveCacheHierarchy::isca98(Boundary::new(4).unwrap());
        let mut inc = InclusiveCacheHierarchy::isca98(Boundary::new(4).unwrap());
        for round in 0..4 {
            for i in 0..blocks {
                ex.access(rd(i as u64 * 32));
                inc.access(rd(i as u64 * 32));
            }
            let _ = round;
        }
        // Exclusive: the full working set fits exactly; inclusive: the
        // L1-duplicated share is lost. (Sequential sweep + LRU makes the
        // inclusive design miss everything, the exclusive one nothing.)
        let ex_miss = ex.stats().global_miss_ratio();
        let inc_miss = inc.stats().global_miss_ratio();
        assert!(ex_miss <= 0.3, "exclusive: {ex_miss}");
        assert!(inc_miss > ex_miss, "inclusive must miss more: {inc_miss} vs {ex_miss}");
    }

    #[test]
    fn back_invalidation_keeps_inclusion() {
        let mut c = InclusiveCacheHierarchy::isca98(Boundary::new(1).unwrap());
        // Overfill one set's L2 (30 ways at boundary 1) so
        // back-invalidations trigger.
        for i in 0..40u64 {
            c.access(rd(i * 4096));
        }
        assert!(c.check_inclusive());
        assert!(c.resident_blocks() <= 30);
    }
}
