//! The blocking-cache TPI performance model (paper §5.1).
//!
//! The paper's cache methodology assumes a 4-way issue processor whose
//! pipeline is 67 % efficient absent L1 D-cache misses (base IPC 2.67),
//! blocking caches, and no access conflicts. Performance is reported as
//! **average time per instruction** — `TPI = cycle time / IPC` — and the
//! miss-induced component **TPImiss** is reported separately (Figure 8).
//!
//! Accounting: with `N` instructions (references × instructions-per-
//! reference), the pipeline takes `N / base_ipc` base cycles; every L1
//! miss that hits L2 stalls for the L2 hit latency beyond the pipelined L1
//! access, and every global miss additionally stalls for the 30 ns
//! board-level latency. All stall cycles are charged to TPImiss.

use crate::config::Boundary;
use crate::error::CacheError;
use crate::stats::CacheStats;
use cap_timing::cacti::{CacheTimingModel, L1_LATENCY_CYCLES};
use cap_timing::units::Ns;

/// The paper's base pipeline: 4-way issue at 67 % efficiency.
pub const BASE_IPC: f64 = 2.67;

/// Pipeline parameters of the TPI model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfParams {
    /// IPC in the absence of L1 D-cache misses (paper: 2.67).
    pub base_ipc: f64,
    /// Dynamic instructions per D-cache reference (a workload property;
    /// e.g. 3.0 means one third of instructions are loads/stores).
    pub insts_per_ref: f64,
}

impl PerfParams {
    /// The paper's pipeline with a given memory-reference density.
    ///
    /// # Panics
    ///
    /// Panics if `insts_per_ref < 1` (every reference is an instruction).
    pub fn isca98(insts_per_ref: f64) -> Self {
        assert!(insts_per_ref >= 1.0, "a reference is itself an instruction");
        PerfParams { base_ipc: BASE_IPC, insts_per_ref }
    }
}

/// TPI decomposition for one simulated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpiBreakdown {
    /// The processor cycle time at this boundary.
    pub cycle: Ns,
    /// Base (miss-free) time per instruction: `cycle / base_ipc`.
    pub base_tpi: Ns,
    /// Miss-induced time per instruction (the paper's TPImiss).
    pub miss_tpi: Ns,
    /// Dynamic instructions represented by the run.
    pub instructions: f64,
}

impl TpiBreakdown {
    /// Total average time per instruction.
    pub fn total_tpi(&self) -> Ns {
        self.base_tpi + self.miss_tpi
    }

    /// The effective IPC implied by the breakdown.
    pub fn ipc(&self) -> f64 {
        self.cycle / self.total_tpi()
    }

    /// Quantizes the breakdown of one interval (`refs` references at
    /// `insts_per_ref` instructions each) into the whole-cycle
    /// `(cycles, insts)` counters an interval recorder would have seen —
    /// the bridge between the analytic cache model and the
    /// sample-oriented managed-run bookkeeping.
    pub fn interval_counts(&self, refs: u64, insts_per_ref: f64) -> (u64, u64) {
        let insts = (refs as f64 * insts_per_ref).round() as u64;
        let cycles = (self.total_tpi().value() * insts as f64 / self.cycle.value()).round() as u64;
        (cycles, insts)
    }
}

/// Evaluates the TPI of a finished simulation at a given boundary.
///
/// # Errors
///
/// Returns [`CacheError::Timing`] if the boundary is outside the timing
/// model's range.
///
/// # Example
///
/// ```
/// use cap_cache::config::Boundary;
/// use cap_cache::perf::{evaluate, PerfParams};
/// use cap_cache::stats::CacheStats;
/// use cap_timing::{CacheTimingModel, Technology};
///
/// let timing = CacheTimingModel::isca98(Technology::isca98_evaluation());
/// let stats = CacheStats { refs: 1000, l1_hits: 990, l2_hits: 8, misses: 2, writebacks: 0 };
/// let tpi = evaluate(&stats, Boundary::new(2)?, &timing, PerfParams::isca98(3.0))?;
/// assert!(tpi.total_tpi() > tpi.base_tpi);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate(
    stats: &CacheStats,
    boundary: Boundary,
    timing: &CacheTimingModel,
    params: PerfParams,
) -> Result<TpiBreakdown, CacheError> {
    let k = boundary.increments();
    let cycle = timing.cycle_time(k)?;
    let l2_extra = timing.l2_hit_cycles(k)?.saturating_sub(u64::from(L1_LATENCY_CYCLES));
    let mem_extra = l2_extra + timing.miss_cycles(k)?;

    let instructions = stats.refs as f64 * params.insts_per_ref;
    let stall_cycles = stats.l2_hits as f64 * l2_extra as f64 + stats.misses as f64 * mem_extra as f64;

    let base_tpi = cycle / params.base_ipc;
    let miss_tpi = if instructions > 0.0 { cycle * (stall_cycles / instructions) } else { Ns(0.0) };
    Ok(TpiBreakdown { cycle, base_tpi, miss_tpi, instructions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_timing::Technology;

    fn timing() -> CacheTimingModel {
        CacheTimingModel::isca98(Technology::isca98_evaluation())
    }

    fn stats(refs: u64, l2_hits: u64, misses: u64) -> CacheStats {
        CacheStats { refs, l1_hits: refs - l2_hits - misses, l2_hits, misses, writebacks: 0 }
    }

    #[test]
    fn miss_free_run_has_zero_tpimiss() {
        let t = evaluate(&stats(1000, 0, 0), Boundary::new(2).unwrap(), &timing(), PerfParams::isca98(3.0)).unwrap();
        assert_eq!(t.miss_tpi, Ns(0.0));
        assert!((t.ipc() - BASE_IPC).abs() < 1e-9);
        assert!((t.base_tpi.value() - t.cycle.value() / BASE_IPC).abs() < 1e-12);
    }

    #[test]
    fn more_misses_cost_more() {
        let b = Boundary::new(2).unwrap();
        let p = PerfParams::isca98(3.0);
        let low = evaluate(&stats(1000, 10, 1), b, &timing(), p).unwrap();
        let high = evaluate(&stats(1000, 100, 10), b, &timing(), p).unwrap();
        assert!(high.miss_tpi > low.miss_tpi);
        assert!(high.total_tpi() > low.total_tpi());
        assert_eq!(high.base_tpi, low.base_tpi);
    }

    #[test]
    fn global_misses_cost_more_than_l2_hits() {
        let b = Boundary::new(2).unwrap();
        let p = PerfParams::isca98(3.0);
        let l2 = evaluate(&stats(1000, 50, 0), b, &timing(), p).unwrap();
        let mem = evaluate(&stats(1000, 0, 50), b, &timing(), p).unwrap();
        assert!(mem.miss_tpi > l2.miss_tpi * 2.0);
    }

    #[test]
    fn bigger_l1_trades_cycle_for_misses() {
        // Same stats: a larger boundary only slows the clock.
        let p = PerfParams::isca98(3.0);
        let s = stats(1000, 0, 0);
        let small = evaluate(&s, Boundary::new(1).unwrap(), &timing(), p).unwrap();
        let large = evaluate(&s, Boundary::new(8).unwrap(), &timing(), p).unwrap();
        assert!(large.base_tpi > small.base_tpi);
    }

    #[test]
    fn matches_paper_tpi_scale() {
        // The best-conventional boundary with a mild miss profile should
        // land on the paper's Figure 9 axis (0.2-0.7 ns for most apps).
        let t = evaluate(
            &stats(100_000, 3_000, 300),
            Boundary::best_conventional(),
            &timing(),
            PerfParams::isca98(3.0),
        )
        .unwrap();
        let total = t.total_tpi();
        assert!(total > Ns(0.2) && total < Ns(0.7), "got {total}");
    }

    #[test]
    fn stereo_like_profile_reaches_figure8_peak() {
        // A 25 % L1 miss ratio mostly caught by L2 at the conventional
        // boundary produces the ~0.9 ns TPImiss the paper clips in Fig 8.
        let t = evaluate(
            &stats(100_000, 24_000, 1_000),
            Boundary::best_conventional(),
            &timing(),
            PerfParams::isca98(2.9),
        )
        .unwrap();
        assert!(t.miss_tpi > Ns(0.6) && t.miss_tpi < Ns(1.1), "got {}", t.miss_tpi);
    }

    #[test]
    fn instructions_scale_with_density() {
        let b = Boundary::new(2).unwrap();
        let s = stats(1000, 10, 0);
        let dense = evaluate(&s, b, &timing(), PerfParams::isca98(2.0)).unwrap();
        let sparse = evaluate(&s, b, &timing(), PerfParams::isca98(10.0)).unwrap();
        assert!((dense.instructions - 2000.0).abs() < 1e-9);
        assert!((sparse.instructions - 10000.0).abs() < 1e-9);
        // Same misses spread over more instructions: lower TPImiss.
        assert!(sparse.miss_tpi < dense.miss_tpi);
    }

    #[test]
    #[should_panic(expected = "reference is itself")]
    fn rejects_sub_unit_density() {
        let _ = PerfParams::isca98(0.5);
    }

    #[test]
    fn interval_counts_quantize_to_whole_cycles() {
        let t = evaluate(&stats(1000, 10, 1), Boundary::new(2).unwrap(), &timing(), PerfParams::isca98(3.0)).unwrap();
        let (cycles, insts) = t.interval_counts(1000, 3.0);
        assert_eq!(insts, 3000);
        let want = (t.total_tpi().value() * 3000.0 / t.cycle.value()).round() as u64;
        assert_eq!(cycles, want);
        assert!(cycles > 1000, "a 3000-instruction interval takes >1000 cycles at IPC<3: {cycles}");
    }

    #[test]
    fn empty_stats_are_safe() {
        let t = evaluate(&CacheStats::new(), Boundary::new(2).unwrap(), &timing(), PerfParams::isca98(3.0)).unwrap();
        assert_eq!(t.miss_tpi, Ns(0.0));
        assert_eq!(t.instructions, 0.0);
    }
}
