//! The adaptive exclusive two-level cache structure.
//!
//! Physical model: every set spans all sixteen increments — 32 ways for
//! the paper's geometry (16 increments × 2 ways). The boundary assigns the
//! first `2k` *way positions* to L1 and the rest to L2, mirroring the
//! physical layout of Figure 6 where increments closest to the cache port
//! are L1. Moving the boundary therefore re-labels ways without touching
//! their contents, which is exactly why the paper's design can reconfigure
//! "without having to invalidate or transfer data".
//!
//! Exclusion is maintained operationally: a block is inserted into L1 on a
//! miss; an L2 hit *swaps* the block with an L1 victim; an L1 victim
//! displaced by a fill is demoted into L2, possibly evicting the L2 LRU
//! block. At no point can a tag appear twice in a set — an invariant
//! checked by [`AdaptiveCacheHierarchy::check_exclusive`] and exercised by
//! property tests.
//!
//! # Degraded operation
//!
//! The fault model in `cap-core` can retire trailing increments (e.g. a
//! manufacturing defect or an in-field failure takes a bus segment out of
//! service). [`AdaptiveCacheHierarchy::retire_increments`] drops the blocks
//! they held and shrinks the usable way range; the structure keeps serving
//! references from the surviving increments, and boundaries that would
//! reach into the dead region are clamped (the effective L1 never exceeds
//! the usable increments, and the L2 region may become empty, in which
//! case demoted victims are simply discarded).

use crate::config::Boundary;
use crate::error::CacheError;
use crate::stats::{AccessOutcome, CacheStats};
use cap_timing::cacti::CacheGeometry;
use cap_trace::mem::{AccessKind, MemRef};

/// Which level a block currently resides in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// An increment on the L1 side of the boundary.
    L1,
    /// An increment on the L2 side of the boundary.
    L2,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Block {
    tag: u64,
    dirty: bool,
    recency: u64,
}

#[derive(Debug, Clone, Default)]
struct CacheSet {
    ways: Vec<Option<Block>>,
}

/// The complexity-adaptive two-level D-cache hierarchy.
///
/// See the [module documentation](self) for the model; see
/// [`crate::perf`] for turning its [`CacheStats`] into TPI.
#[derive(Debug, Clone)]
pub struct AdaptiveCacheHierarchy {
    geometry: CacheGeometry,
    boundary: Boundary,
    sets: Vec<CacheSet>,
    clock: u64,
    stats: CacheStats,
    /// Hits per physical way position (for the §4.1 asynchronous-design
    /// analysis: accesses served by near increments are faster).
    way_hits: Vec<u64>,
    /// Trailing increments taken out of service (fault model); their way
    /// positions hold no blocks and are never filled.
    dead_increments: usize,
}

impl AdaptiveCacheHierarchy {
    /// Creates the paper's 128 KB / 16-increment structure with the given
    /// initial boundary.
    pub fn isca98(boundary: Boundary) -> Self {
        Self::with_geometry(CacheGeometry::isca98(), boundary)
    }

    /// Creates a hierarchy over an arbitrary geometry, validating it
    /// first.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::Timing`] if the geometry fails
    /// [`CacheGeometry::validate`].
    pub fn try_with_geometry(
        geometry: CacheGeometry,
        boundary: Boundary,
    ) -> Result<Self, CacheError> {
        geometry.validate()?;
        let total_ways = geometry.increments * geometry.increment_assoc;
        let sets = (0..geometry.sets())
            .map(|_| CacheSet { ways: vec![None; total_ways] })
            .collect();
        Ok(AdaptiveCacheHierarchy {
            geometry,
            boundary,
            sets,
            clock: 0,
            stats: CacheStats::new(),
            way_hits: vec![0; total_ways],
            dead_increments: 0,
        })
    }

    /// Creates a hierarchy over an arbitrary (validated) geometry — a
    /// convenience wrapper over
    /// [`AdaptiveCacheHierarchy::try_with_geometry`] for geometries known
    /// valid, such as [`CacheGeometry::isca98`].
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`CacheGeometry::validate`] — callers
    /// constructing custom geometries should prefer the fallible variant.
    pub fn with_geometry(geometry: CacheGeometry, boundary: Boundary) -> Self {
        Self::try_with_geometry(geometry, boundary).expect("invalid cache geometry")
    }

    /// The structure's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// The current L1/L2 boundary.
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// Moves the L1/L2 boundary. Contents are untouched: blocks in
    /// re-labelled increments simply change level, per the paper's
    /// exclusive mapping rule. If increments have been retired, the
    /// effective L1 is clamped to the usable range (see
    /// [`AdaptiveCacheHierarchy::try_set_boundary`] for the checked
    /// variant).
    pub fn set_boundary(&mut self, boundary: Boundary) {
        self.boundary = boundary;
    }

    /// Moves the L1/L2 boundary, rejecting positions that would leave no
    /// usable L2 increment after dead increments are excluded.
    ///
    /// With no retired increments this accepts every valid [`Boundary`]
    /// and behaves exactly like
    /// [`AdaptiveCacheHierarchy::set_boundary`].
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidBoundary`] (with `increments` set to
    /// the usable count) if `boundary` needs more increments than remain
    /// in service.
    pub fn try_set_boundary(&mut self, boundary: Boundary) -> Result<(), CacheError> {
        let usable = self.usable_increments();
        if boundary.increments() >= usable {
            return Err(CacheError::InvalidBoundary { requested: boundary.increments(), increments: usable });
        }
        self.boundary = boundary;
        Ok(())
    }

    /// Takes the trailing `n` increments out of service, discarding any
    /// blocks they held (their data is lost — this models a hardware
    /// fault, not an orderly writeback). At least one increment always
    /// stays in service. Returns the number of usable increments left.
    ///
    /// Calling this again with a larger `n` retires more increments;
    /// a smaller `n` does not bring retired increments back.
    pub fn retire_increments(&mut self, n: usize) -> usize {
        let n = n.min(self.geometry.increments - 1);
        if n > self.dead_increments {
            self.dead_increments = n;
            let usable_ways = self.usable_ways();
            for set in &mut self.sets {
                for w in &mut set.ways[usable_ways..] {
                    *w = None;
                }
            }
        }
        self.usable_increments()
    }

    /// Increments currently in service.
    pub fn usable_increments(&self) -> usize {
        self.geometry.increments - self.dead_increments
    }

    /// Increments retired by [`AdaptiveCacheHierarchy::retire_increments`].
    pub fn dead_increments(&self) -> usize {
        self.dead_increments
    }

    fn usable_ways(&self) -> usize {
        self.usable_increments() * self.geometry.increment_assoc
    }

    /// Counters accumulated since construction or the last
    /// [`AdaptiveCacheHierarchy::reset_stats`].
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the counters (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::new();
        self.way_hits = vec![0; self.way_hits.len()];
    }

    /// Hits per physical way position since the last reset.
    ///
    /// Way `w` belongs to increment `w / increment_assoc`; increments
    /// closer to the cache port have shorter bus delays, which is what
    /// the paper's §4.1 asynchronous-design argument exploits.
    pub fn way_hit_histogram(&self) -> &[u64] {
        &self.way_hits
    }

    /// Hits per increment since the last reset (sums the way histogram).
    pub fn increment_hit_histogram(&self) -> Vec<u64> {
        self.way_hits
            .chunks(self.geometry.increment_assoc)
            .map(|c| c.iter().sum())
            .collect()
    }

    fn l1_ways(&self) -> usize {
        // The effective L1 never extends into retired increments.
        self.boundary.increments().min(self.usable_increments()) * self.geometry.increment_assoc
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let block = addr / self.geometry.block_bytes as u64;
        let sets = self.geometry.sets() as u64;
        ((block % sets) as usize, block / sets)
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Chooses the victim way within `ways[lo..hi]`: an empty way if one
    /// exists, else the least recently used.
    fn victim_in(set: &CacheSet, lo: usize, hi: usize) -> usize {
        let mut lru = lo;
        let mut lru_rec = u64::MAX;
        for (i, w) in set.ways[lo..hi].iter().enumerate() {
            match w {
                None => return lo + i,
                Some(b) if b.recency < lru_rec => {
                    lru_rec = b.recency;
                    lru = lo + i;
                }
                Some(_) => {}
            }
        }
        lru
    }

    /// Performs one reference and returns where it was satisfied.
    ///
    /// Stores mark the block dirty; dirty blocks evicted from the L2 side
    /// count as writebacks.
    pub fn access(&mut self, r: MemRef) -> AccessOutcome {
        let (set_idx, tag) = self.set_and_tag(r.addr);
        let l1_ways = self.l1_ways();
        let dirty = r.kind == AccessKind::Write;

        let hit_way = self.sets[set_idx]
            .ways
            .iter()
            .position(|w| matches!(w, Some(b) if b.tag == tag));

        if let Some(w) = hit_way {
            self.way_hits[w] += 1;
        }
        let outcome = match hit_way {
            Some(w) if w < l1_ways => {
                let now = self.tick();
                let b = self.sets[set_idx].ways[w].as_mut().expect("hit way is occupied");
                b.recency = now;
                b.dirty |= dirty;
                AccessOutcome::L1Hit
            }
            Some(w) => {
                // L2 hit: swap with an L1 victim (exclusive promotion).
                let demote_rec = self.tick();
                let promote_rec = self.tick();
                let victim = Self::victim_in(&self.sets[set_idx], 0, l1_ways);
                let set = &mut self.sets[set_idx];
                let mut promoted = set.ways[w].take().expect("hit way is occupied");
                promoted.recency = promote_rec;
                promoted.dirty |= dirty;
                // The freed L2 slot receives the demoted L1 victim (if any).
                if let Some(mut demoted) = set.ways[victim].take() {
                    demoted.recency = demote_rec;
                    set.ways[w] = Some(demoted);
                }
                set.ways[victim] = Some(promoted);
                AccessOutcome::L2Hit
            }
            None => {
                // Miss: fill into L1, demoting the L1 victim into L2 and
                // possibly evicting the L2 LRU block. With every usable
                // increment labelled L1 (possible only in degraded
                // operation), the victim is evicted outright instead.
                let demote_rec = self.tick();
                let fill_rec = self.tick();
                let victim = Self::victim_in(&self.sets[set_idx], 0, l1_ways);
                let usable = self.usable_ways();
                let set = &mut self.sets[set_idx];
                if let Some(mut demoted) = set.ways[victim].take() {
                    if l1_ways < usable {
                        demoted.recency = demote_rec;
                        let slot = Self::victim_in(set, l1_ways, usable);
                        if let Some(evicted) = set.ways[slot].replace(demoted) {
                            if evicted.dirty {
                                self.stats.writebacks += 1;
                            }
                        }
                    } else if demoted.dirty {
                        self.stats.writebacks += 1;
                    }
                }
                set.ways[victim] = Some(Block { tag, dirty, recency: fill_rec });
                AccessOutcome::Miss
            }
        };
        self.stats.record(outcome);
        outcome
    }

    /// Looks up an address without disturbing replacement state.
    pub fn probe(&self, addr: u64) -> Option<Level> {
        let (set_idx, tag) = self.set_and_tag(addr);
        let l1_ways = self.l1_ways();
        self.sets[set_idx]
            .ways
            .iter()
            .position(|w| matches!(w, Some(b) if b.tag == tag))
            .map(|w| if w < l1_ways { Level::L1 } else { Level::L2 })
    }

    /// Verifies the exclusion invariant: no tag appears twice in a set.
    pub fn check_exclusive(&self) -> bool {
        self.sets.iter().all(|set| {
            let mut tags: Vec<u64> = set.ways.iter().flatten().map(|b| b.tag).collect();
            let before = tags.len();
            tags.sort_unstable();
            tags.dedup();
            tags.len() == before
        })
    }

    /// A canonical snapshot of the resident blocks: sorted
    /// `(set, tag, dirty)` triples. Used to verify that boundary moves
    /// preserve contents exactly.
    pub fn contents_snapshot(&self) -> Vec<(usize, u64, bool)> {
        let mut v: Vec<(usize, u64, bool)> = self
            .sets
            .iter()
            .enumerate()
            .flat_map(|(i, set)| set.ways.iter().flatten().map(move |b| (i, b.tag, b.dirty)))
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.sets.iter().map(|s| s.ways.iter().flatten().count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_trace::mem::AccessKind::{Read, Write};

    fn rd(addr: u64) -> MemRef {
        MemRef { addr, kind: Read }
    }

    fn wr(addr: u64) -> MemRef {
        MemRef { addr, kind: Write }
    }

    fn cache(k: usize) -> AdaptiveCacheHierarchy {
        AdaptiveCacheHierarchy::isca98(Boundary::new(k).unwrap())
    }

    #[test]
    fn miss_then_l1_hit() {
        let mut c = cache(2);
        assert_eq!(c.access(rd(0x1000)), AccessOutcome::Miss);
        assert_eq!(c.access(rd(0x1000)), AccessOutcome::L1Hit);
        assert_eq!(c.access(rd(0x101F)), AccessOutcome::L1Hit, "same 32B block");
        assert_eq!(c.access(rd(0x1020)), AccessOutcome::Miss, "next block");
        assert_eq!(c.probe(0x1000), Some(Level::L1));
    }

    #[test]
    fn l1_eviction_demotes_to_l2_and_l2_hit_promotes() {
        let mut c = cache(1); // L1: 2 ways per set
        // Three blocks mapping to the same set (stride = sets * block = 4096).
        let a = 0x0000;
        let b = 0x1000;
        let d = 0x2000;
        c.access(rd(a));
        c.access(rd(b));
        c.access(rd(d)); // evicts LRU (a) from L1 into L2
        assert_eq!(c.probe(a), Some(Level::L2));
        assert_eq!(c.probe(b), Some(Level::L1));
        assert_eq!(c.probe(d), Some(Level::L1));
        // Touch a again: L2 hit, swaps with the L1 LRU (b).
        assert_eq!(c.access(rd(a)), AccessOutcome::L2Hit);
        assert_eq!(c.probe(a), Some(Level::L1));
        assert_eq!(c.probe(b), Some(Level::L2));
        assert!(c.check_exclusive());
    }

    #[test]
    fn lru_within_l1_respected() {
        let mut c = cache(1);
        let a = 0x0000;
        let b = 0x1000;
        c.access(rd(a));
        c.access(rd(b));
        c.access(rd(a)); // a is now MRU
        c.access(rd(0x2000)); // must evict b, not a
        assert_eq!(c.probe(a), Some(Level::L1));
        assert_eq!(c.probe(b), Some(Level::L2));
    }

    #[test]
    fn boundary_move_preserves_contents() {
        let mut c = cache(4);
        for i in 0..4000u64 {
            c.access(rd(i * 32 * 7 % (1 << 20)));
        }
        let before = c.contents_snapshot();
        c.set_boundary(Boundary::new(1).unwrap());
        assert_eq!(c.contents_snapshot(), before);
        c.set_boundary(Boundary::new(8).unwrap());
        assert_eq!(c.contents_snapshot(), before);
        assert!(c.check_exclusive());
    }

    #[test]
    fn boundary_move_relabels_levels() {
        let mut c = cache(1);
        let a = 0x0000;
        let b = 0x1000;
        let d = 0x2000;
        c.access(rd(a));
        c.access(rd(b));
        c.access(rd(d)); // a demoted to an L2 way
        assert_eq!(c.probe(a), Some(Level::L2));
        // Growing L1 to cover that way re-labels the block as L1.
        c.set_boundary(Boundary::new(8).unwrap());
        assert_eq!(c.probe(a), Some(Level::L1));
    }

    #[test]
    fn exclusion_holds_under_stress() {
        let mut c = cache(2);
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for i in 0..50_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Confine to 256 KB so the 128 KB structure churns.
            let addr = (x >> 16) % (256 * 1024);
            if i % 997 == 0 {
                let k = 1 + (x as usize % 15);
                c.set_boundary(Boundary::new(k).unwrap());
            }
            c.access(if x & 1 == 0 { rd(addr) } else { wr(addr) });
            if i % 4096 == 0 {
                assert!(c.check_exclusive());
            }
        }
        assert!(c.check_exclusive());
        assert!(c.stats().is_consistent());
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = cache(2);
        for i in 0..20_000u64 {
            c.access(rd(i * 32));
        }
        let max_blocks = 16 * 8 * 1024 / 32;
        assert!(c.resident_blocks() <= max_blocks);
        assert_eq!(c.resident_blocks(), max_blocks, "sweep should fill the structure");
    }

    #[test]
    fn writebacks_counted_on_dirty_eviction() {
        let mut c = cache(1);
        // Fill one set far beyond total ways (32) with writes.
        for i in 0..64u64 {
            c.access(wr(i * 4096));
        }
        assert!(c.stats().writebacks > 0);
        // Clean fills never write back.
        let mut c2 = cache(1);
        for i in 0..64u64 {
            c2.access(rd(i * 4096));
        }
        assert_eq!(c2.stats().writebacks, 0);
    }

    #[test]
    fn working_set_within_l1_eventually_all_hits() {
        let mut c = cache(2); // 16 KB L1
        let blocks = 8 * 1024 / 32; // 8 KB working set
        for _ in 0..2 {
            for i in 0..blocks {
                c.access(rd(i as u64 * 32));
            }
        }
        c.reset_stats();
        for _ in 0..3 {
            for i in 0..blocks {
                c.access(rd(i as u64 * 32));
            }
        }
        assert_eq!(c.stats().l1_hits, c.stats().refs, "resident set must hit");
    }

    #[test]
    fn working_set_fitting_l2_but_not_l1() {
        let mut c = cache(1); // 8 KB L1, 120 KB L2
        let blocks = 64 * 1024 / 32; // 64 KB working set, random-ish order
        for round in 0..6u64 {
            for i in 0..blocks {
                let j = (i * 17 + round as usize) % blocks;
                c.access(rd(j as u64 * 32));
            }
        }
        c.reset_stats();
        for i in 0..blocks {
            c.access(rd(((i * 29) % blocks) as u64 * 32));
        }
        let s = c.stats();
        assert_eq!(s.misses, 0, "64 KB set fits in the 128 KB structure");
        assert!(s.l2_hits > 0, "but not in the 8 KB L1");
    }

    #[test]
    fn retiring_increments_shrinks_capacity_and_drops_blocks() {
        let mut c = cache(2);
        for i in 0..20_000u64 {
            c.access(rd(i * 32));
        }
        let full = 16 * 8 * 1024 / 32;
        assert_eq!(c.resident_blocks(), full);
        assert_eq!(c.retire_increments(4), 12);
        assert_eq!(c.dead_increments(), 4);
        assert_eq!(c.resident_blocks(), 12 * 8 * 1024 / 32);
        assert!(c.check_exclusive());
        // The survivors keep serving; refills never use dead ways.
        for i in 0..20_000u64 {
            c.access(rd(i * 32));
        }
        assert!(c.resident_blocks() <= 12 * 8 * 1024 / 32);
        // Retiring fewer is a no-op; retiring everything leaves one.
        assert_eq!(c.retire_increments(2), 12);
        assert_eq!(c.retire_increments(100), 1);
    }

    #[test]
    fn boundary_clamps_to_usable_increments() {
        let mut c = cache(8); // nominal 64 KB L1
        c.retire_increments(12); // 4 increments (8 ways) survive
        let a = 0x0000;
        c.access(rd(a));
        // 9 distinct conflicting blocks overflow the 8 usable ways even
        // though the nominal L1 alone holds 16; the effective L1 covers
        // all 4 usable increments, so the victim is evicted outright.
        for i in 1..=8u64 {
            c.access(rd(i * 4096));
        }
        assert_eq!(c.probe(a), None, "evicted despite a nominal 16-way L1");
        assert!(c.check_exclusive());
    }

    #[test]
    fn degraded_demotion_counts_dirty_writebacks() {
        let mut c = cache(8);
        c.retire_increments(8); // usable 8 == boundary 8: L2 region empty
        for i in 0..32u64 {
            c.access(wr(i * 4096)); // one set, dirty fills far beyond 16 ways
        }
        assert!(c.stats().writebacks > 0, "discarded dirty victims must write back");
        assert!(c.check_exclusive());
    }

    #[test]
    fn try_set_boundary_respects_usable_range() {
        let mut c = cache(2);
        assert!(c.try_set_boundary(Boundary::new(15).unwrap()).is_ok());
        c.retire_increments(8);
        assert!(c.try_set_boundary(Boundary::new(7).unwrap()).is_ok());
        let err = c.try_set_boundary(Boundary::new(8).unwrap()).unwrap_err();
        assert!(matches!(err, CacheError::InvalidBoundary { requested: 8, increments: 8 }));
        assert_eq!(c.boundary().increments(), 7, "rejected move leaves boundary unchanged");
    }

    #[test]
    fn reset_stats_clears_counts_only() {
        let mut c = cache(2);
        c.access(rd(0));
        let before = c.contents_snapshot();
        c.reset_stats();
        assert_eq!(c.stats().refs, 0);
        assert_eq!(c.contents_snapshot(), before);
    }
}
