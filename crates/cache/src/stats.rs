//! Access-outcome accounting for the cache hierarchy.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Where a reference was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// Hit in an L1 increment.
    L1Hit,
    /// Missed L1, hit in an L2 increment (block swapped up).
    L2Hit,
    /// Missed both levels (fetched from the board-level cache / memory).
    Miss,
}

/// Counters accumulated while simulating an address stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total references observed.
    pub refs: u64,
    /// References that hit in L1.
    pub l1_hits: u64,
    /// References that missed L1 but hit in L2.
    pub l2_hits: u64,
    /// References that missed both levels.
    pub misses: u64,
    /// Dirty blocks evicted from the structure (writebacks to memory).
    pub writebacks: u64,
}

impl CacheStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one outcome.
    pub fn record(&mut self, outcome: AccessOutcome) {
        self.refs += 1;
        match outcome {
            AccessOutcome::L1Hit => self.l1_hits += 1,
            AccessOutcome::L2Hit => self.l2_hits += 1,
            AccessOutcome::Miss => self.misses += 1,
        }
    }

    /// L1 miss ratio: references not satisfied by L1.
    pub fn l1_miss_ratio(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            (self.l2_hits + self.misses) as f64 / self.refs as f64
        }
    }

    /// Global miss ratio: references satisfied by neither level.
    pub fn global_miss_ratio(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.misses as f64 / self.refs as f64
        }
    }

    /// Local L2 miss ratio: L1 misses that also missed L2.
    pub fn l2_local_miss_ratio(&self) -> f64 {
        let l1m = self.l2_hits + self.misses;
        if l1m == 0 {
            0.0
        } else {
            self.misses as f64 / l1m as f64
        }
    }

    /// Internal consistency: counters partition the references.
    pub fn is_consistent(&self) -> bool {
        self.l1_hits + self.l2_hits + self.misses == self.refs
    }
}

impl Add for CacheStats {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        CacheStats {
            refs: self.refs + rhs.refs,
            l1_hits: self.l1_hits + rhs.l1_hits,
            l2_hits: self.l2_hits + rhs.l2_hits,
            misses: self.misses + rhs.misses,
            writebacks: self.writebacks + rhs.writebacks,
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refs={} l1_miss={:.3} global_miss={:.4} writebacks={}",
            self.refs,
            self.l1_miss_ratio(),
            self.global_miss_ratio(),
            self.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_partitions_refs() {
        let mut s = CacheStats::new();
        s.record(AccessOutcome::L1Hit);
        s.record(AccessOutcome::L2Hit);
        s.record(AccessOutcome::Miss);
        s.record(AccessOutcome::L1Hit);
        assert_eq!(s.refs, 4);
        assert!(s.is_consistent());
        assert!((s.l1_miss_ratio() - 0.5).abs() < 1e-12);
        assert!((s.global_miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.l2_local_miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_ratios() {
        let s = CacheStats::new();
        assert_eq!(s.l1_miss_ratio(), 0.0);
        assert_eq!(s.global_miss_ratio(), 0.0);
        assert_eq!(s.l2_local_miss_ratio(), 0.0);
        assert!(s.is_consistent());
    }

    #[test]
    fn add_combines_counters() {
        let mut a = CacheStats::new();
        a.record(AccessOutcome::L1Hit);
        let mut b = CacheStats::new();
        b.record(AccessOutcome::Miss);
        b.writebacks = 3;
        let c = a + b;
        assert_eq!(c.refs, 2);
        assert_eq!(c.writebacks, 3);
        assert!(c.is_consistent());
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn display_mentions_ratios() {
        let mut s = CacheStats::new();
        s.record(AccessOutcome::Miss);
        let text = s.to_string();
        assert!(text.contains("refs=1"));
        assert!(text.contains("global_miss"));
    }
}
