//! Error type for the cache crate.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring the adaptive cache hierarchy.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CacheError {
    /// A boundary position outside `1..increments` was requested.
    InvalidBoundary {
        /// The requested boundary (increments assigned to L1).
        requested: usize,
        /// The total number of increments in the structure.
        increments: usize,
    },
    /// The underlying timing model rejected the geometry.
    Timing(cap_timing::TimingError),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::InvalidBoundary { requested, increments } => write!(
                f,
                "boundary {requested} must leave at least one of {increments} increments on each side"
            ),
            CacheError::Timing(e) => write!(f, "timing model error: {e}"),
        }
    }
}

impl Error for CacheError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CacheError::Timing(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<cap_timing::TimingError> for CacheError {
    fn from(e: cap_timing::TimingError) -> Self {
        CacheError::Timing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CacheError::InvalidBoundary { requested: 16, increments: 16 };
        assert!(e.to_string().contains("16"));
        assert!(e.source().is_none());
        let t = CacheError::Timing(cap_timing::TimingError::InvalidQueueSize { entries: 3 });
        assert!(t.source().is_some());
    }
}
