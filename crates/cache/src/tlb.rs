//! A complexity-adaptive TLB with primary and backup sections.
//!
//! The paper names TLBs as prime complexity-adaptive candidates and
//! sketches the organization implemented here (§4.2): instead of
//! disabling elements, the structure "may consist of single and two
//! cycle lookup elements" — a fast **primary** section sized to the
//! cycle budget, backed by the remaining entries as a slower **backup**
//! section. The boundary between the sections is movable, exactly like
//! the cache hierarchy's L1/L2 boundary: entries keep their contents
//! when the split moves.
//!
//! * a hit in the primary section costs the pipelined single-cycle (or
//!   however many cycles the primary's CAM delay needs at the current
//!   clock) lookup;
//! * a hit in the backup section costs a second, full-length lookup and
//!   swaps the entry into the primary (exclusive promotion);
//! * a miss costs a page walk.
//!
//! [`sweep`] reproduces, for the TLB, the same process-level adaptive
//! study the paper runs for the cache and the queue.

use crate::error::CacheError;
use cap_timing::cam::CamTimingModel;
use cap_timing::units::Ns;
use cap_trace::mem::AddressStream;
use std::fmt;

/// Bytes per page.
pub const PAGE_BYTES: u64 = 4096;

/// Total entries in the adaptive TLB structure.
pub const TOTAL_ENTRIES: usize = 128;

/// The section increment: the primary/backup split moves in steps of 16
/// entries (the repeater-isolated group size).
pub const ENTRY_INCREMENT: usize = 16;

/// Page-walk latency on a full miss, in cycles.
pub const WALK_CYCLES: u64 = 30;

/// The primary/backup split: the number of entries in the fast primary
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TlbConfig(usize);

impl TlbConfig {
    /// Creates a split with the given number of primary entries.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidBoundary`] unless the size is a
    /// positive multiple of 16 no larger than the full structure.
    pub fn new(primary_entries: usize) -> Result<Self, CacheError> {
        if primary_entries == 0
            || !primary_entries.is_multiple_of(ENTRY_INCREMENT)
            || primary_entries > TOTAL_ENTRIES
        {
            return Err(CacheError::InvalidBoundary {
                requested: primary_entries,
                increments: TOTAL_ENTRIES / ENTRY_INCREMENT,
            });
        }
        Ok(TlbConfig(primary_entries))
    }

    /// Entries in the primary (fast) section.
    pub fn primary(self) -> usize {
        self.0
    }

    /// Entries in the backup section.
    pub fn backup(self) -> usize {
        TOTAL_ENTRIES - self.0
    }

    /// All legal splits (16, 32, ..., 128 primary entries).
    pub fn sweep() -> impl Iterator<Item = TlbConfig> {
        (1..=TOTAL_ENTRIES / ENTRY_INCREMENT).map(|i| TlbConfig(i * ENTRY_INCREMENT))
    }
}

impl fmt::Display for TlbConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{} TLB", self.primary(), self.backup())
    }
}

/// Where a translation was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the primary section.
    PrimaryHit,
    /// Hit in the backup section (entry promoted).
    BackupHit,
    /// Not resident: page walk.
    Miss,
}

/// Lookup counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TlbStats {
    /// Total lookups.
    pub lookups: u64,
    /// Primary-section hits.
    pub primary_hits: u64,
    /// Backup-section hits.
    pub backup_hits: u64,
    /// Full misses (page walks).
    pub misses: u64,
}

impl TlbStats {
    /// Fraction of lookups that missed both sections.
    pub fn miss_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }

    /// Fraction of lookups served by the backup section.
    pub fn backup_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.backup_hits as f64 / self.lookups as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    vpn: u64,
    recency: u64,
}

/// The adaptive TLB structure.
#[derive(Debug, Clone)]
pub struct AdaptiveTlb {
    slots: Vec<Option<TlbEntry>>,
    config: TlbConfig,
    clock: u64,
    stats: TlbStats,
}

impl AdaptiveTlb {
    /// Creates an empty TLB with the given split.
    pub fn new(config: TlbConfig) -> Self {
        AdaptiveTlb { slots: vec![None; TOTAL_ENTRIES], config, clock: 0, stats: TlbStats::default() }
    }

    /// The current split.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Moves the primary/backup split; entries keep their slots (and are
    /// merely re-labelled), mirroring the cache hierarchy's movable
    /// boundary.
    pub fn set_config(&mut self, config: TlbConfig) {
        self.config = config;
    }

    /// Counters so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Clears the counters.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Number of resident translations.
    pub fn resident(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn victim_in(&self, lo: usize, hi: usize) -> usize {
        let mut lru = lo;
        let mut lru_rec = u64::MAX;
        for (i, s) in self.slots[lo..hi].iter().enumerate() {
            match s {
                None => return lo + i,
                Some(e) if e.recency < lru_rec => {
                    lru_rec = e.recency;
                    lru = lo + i;
                }
                Some(_) => {}
            }
        }
        lru
    }

    /// Translates one byte address.
    pub fn access(&mut self, addr: u64) -> TlbOutcome {
        let vpn = addr / PAGE_BYTES;
        let primary = self.config.primary();
        self.stats.lookups += 1;
        let hit = self.slots.iter().position(|s| matches!(s, Some(e) if e.vpn == vpn));
        match hit {
            Some(i) if i < primary => {
                let now = self.tick();
                self.slots[i].as_mut().expect("hit slot is occupied").recency = now;
                self.stats.primary_hits += 1;
                TlbOutcome::PrimaryHit
            }
            Some(i) => {
                // Promote from backup: swap with the primary LRU victim.
                let demote_rec = self.tick();
                let promote_rec = self.tick();
                let victim = self.victim_in(0, primary);
                let mut promoted = self.slots[i].take().expect("hit slot is occupied");
                promoted.recency = promote_rec;
                if let Some(mut demoted) = self.slots[victim].take() {
                    demoted.recency = demote_rec;
                    self.slots[i] = Some(demoted);
                }
                self.slots[victim] = Some(promoted);
                self.stats.backup_hits += 1;
                TlbOutcome::BackupHit
            }
            None => {
                let demote_rec = self.tick();
                let fill_rec = self.tick();
                let victim = self.victim_in(0, primary);
                if let Some(mut demoted) = self.slots[victim].take() {
                    // With no backup section the victim is simply evicted.
                    if primary < TOTAL_ENTRIES {
                        demoted.recency = demote_rec;
                        let slot = self.victim_in(primary, TOTAL_ENTRIES);
                        self.slots[slot] = Some(demoted);
                    }
                }
                self.slots[victim] = Some(TlbEntry { vpn, recency: fill_rec });
                self.stats.misses += 1;
                TlbOutcome::Miss
            }
        }
    }

    /// Verifies that no page is resident twice.
    pub fn check_exclusive(&self) -> bool {
        let mut vpns: Vec<u64> = self.slots.iter().flatten().map(|e| e.vpn).collect();
        let before = vpns.len();
        vpns.sort_unstable();
        vpns.dedup();
        vpns.len() == before
    }
}

/// The TLB's contribution to TPI at a given split, clock and reference
/// density.
///
/// The primary lookup is pipelined; its baseline single cycle is part of
/// the load pipeline, so only *extra* cycles are charged: a primary
/// lookup that no longer fits one cycle charges the overflow on every
/// access, a backup hit charges a second (full-structure) lookup, and a
/// miss charges the walk on top.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlbTpi {
    /// Cycles a primary lookup takes at this split and clock.
    pub primary_cycles: u64,
    /// Cycles a backup hit takes in total.
    pub backup_cycles: u64,
    /// The TLB-induced time per instruction (ns).
    pub tpi_ns: f64,
}

/// Evaluates [`TlbTpi`] from the counters.
///
/// # Errors
///
/// Propagates CAM-timing errors.
pub fn evaluate(
    stats: &TlbStats,
    config: TlbConfig,
    cam: &CamTimingModel,
    cycle: Ns,
    insts_per_ref: f64,
) -> Result<TlbTpi, CacheError> {
    let primary_cycles = (cam.lookup_delay(config.primary())? / cycle).ceil().max(1.0) as u64;
    let full_cycles = (cam.lookup_delay(TOTAL_ENTRIES)? / cycle).ceil().max(1.0) as u64;
    let backup_cycles = primary_cycles + full_cycles;
    let extra_per_access = (primary_cycles - 1) as f64;
    let total_extra = stats.lookups as f64 * extra_per_access
        + stats.backup_hits as f64 * full_cycles as f64
        + stats.misses as f64 * (full_cycles + WALK_CYCLES) as f64;
    let instructions = stats.lookups as f64 * insts_per_ref;
    let tpi_ns = if instructions > 0.0 { cycle.value() * total_extra / instructions } else { 0.0 };
    Ok(TlbTpi { primary_cycles, backup_cycles, tpi_ns })
}

/// One point of a TLB split sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlbSweepPoint {
    /// The split simulated.
    pub config: TlbConfig,
    /// Counters.
    pub stats: TlbStats,
    /// The TLB TPI contribution.
    pub tpi: TlbTpi,
}

/// Runs the same reference stream at every split (process-level adaptive
/// methodology, applied to the TLB).
///
/// # Errors
///
/// Propagates CAM-timing errors.
pub fn sweep<S, F>(
    mut make_stream: F,
    refs: u64,
    cam: &CamTimingModel,
    cycle: Ns,
    insts_per_ref: f64,
) -> Result<Vec<TlbSweepPoint>, CacheError>
where
    S: AddressStream,
    F: FnMut() -> S,
{
    let mut out = Vec::new();
    for config in TlbConfig::sweep() {
        let mut tlb = AdaptiveTlb::new(config);
        let mut stream = make_stream();
        for _ in 0..refs {
            let r = stream.next_ref();
            tlb.access(r.addr);
        }
        let stats = tlb.stats();
        let tpi = evaluate(&stats, config, cam, cycle, insts_per_ref)?;
        out.push(TlbSweepPoint { config, stats, tpi });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_timing::Technology;
    use cap_trace::mem::{Region, RegionMix};

    fn cam() -> CamTimingModel {
        CamTimingModel::tlb(Technology::isca98_evaluation())
    }

    #[test]
    fn config_validation() {
        assert!(TlbConfig::new(0).is_err());
        assert!(TlbConfig::new(8).is_err());
        assert!(TlbConfig::new(144).is_err());
        let c = TlbConfig::new(32).unwrap();
        assert_eq!(c.primary(), 32);
        assert_eq!(c.backup(), 96);
        assert_eq!(TlbConfig::sweep().count(), 8);
        assert_eq!(c.to_string(), "32+96 TLB");
    }

    #[test]
    fn hit_miss_promote() {
        let mut tlb = AdaptiveTlb::new(TlbConfig::new(16).unwrap());
        assert_eq!(tlb.access(0x1000), TlbOutcome::Miss);
        assert_eq!(tlb.access(0x1FFF), TlbOutcome::PrimaryHit, "same page");
        // Fill the primary (16 entries) with other pages; 0x1000's page
        // is demoted to backup, then promoted on re-access.
        for p in 2..=17u64 {
            tlb.access(p * PAGE_BYTES);
        }
        assert_eq!(tlb.access(0x1000), TlbOutcome::BackupHit);
        assert_eq!(tlb.access(0x1000), TlbOutcome::PrimaryHit);
        assert!(tlb.check_exclusive());
    }

    #[test]
    fn capacity_is_total_entries() {
        let mut tlb = AdaptiveTlb::new(TlbConfig::new(32).unwrap());
        for p in 0..200u64 {
            tlb.access(p * PAGE_BYTES);
        }
        assert_eq!(tlb.resident(), TOTAL_ENTRIES);
        assert!(tlb.check_exclusive());
        // A working set within 128 pages eventually stops missing.
        tlb.reset_stats();
        for _ in 0..3 {
            for p in 100..200u64 {
                tlb.access(p * PAGE_BYTES);
            }
        }
        assert!(tlb.stats().miss_ratio() < 0.05, "got {}", tlb.stats().miss_ratio());
    }

    #[test]
    fn split_move_preserves_contents() {
        let mut tlb = AdaptiveTlb::new(TlbConfig::new(64).unwrap());
        for p in 0..100u64 {
            tlb.access(p * PAGE_BYTES);
        }
        let resident = tlb.resident();
        tlb.set_config(TlbConfig::new(16).unwrap());
        assert_eq!(tlb.resident(), resident);
        tlb.set_config(TlbConfig::new(128).unwrap());
        assert_eq!(tlb.resident(), resident);
        assert!(tlb.check_exclusive());
    }

    #[test]
    fn small_working_set_prefers_small_primary() {
        // 12 hot pages: they fit any primary; a small primary keeps the
        // single-cycle lookup fast.
        let pristine = RegionMix::builder(1)
            .region(Region::random(0, 12 * PAGE_BYTES), 1.0)
            .build()
            .unwrap();
        let cycle = Ns(0.60);
        let points = sweep(|| pristine.clone(), 30_000, &cam(), cycle, 3.0).unwrap();
        let best = points
            .iter()
            .min_by(|a, b| a.tpi.tpi_ns.partial_cmp(&b.tpi.tpi_ns).unwrap())
            .unwrap();
        assert!(best.config.primary() <= 32, "best was {}", best.config);
    }

    #[test]
    fn wide_working_set_prefers_large_primary() {
        // ~100 hot pages at a fast clock: a big primary avoids constant
        // backup swapping; the extra primary lookup cycles are cheap
        // relative to the second lookup on every backup hit.
        let pristine = RegionMix::builder(2)
            .region(Region::random(0, 100 * PAGE_BYTES), 1.0)
            .build()
            .unwrap();
        let cycle = Ns(0.60);
        let points = sweep(|| pristine.clone(), 60_000, &cam(), cycle, 3.0).unwrap();
        let best = points
            .iter()
            .min_by(|a, b| a.tpi.tpi_ns.partial_cmp(&b.tpi.tpi_ns).unwrap())
            .unwrap();
        assert!(best.config.primary() >= 64, "best was {}", best.config);
        // And the small split is measurably worse.
        let small = &points[0];
        assert!(small.tpi.tpi_ns > best.tpi.tpi_ns * 1.3);
    }

    #[test]
    fn evaluate_charges_the_right_components() {
        let cam = cam();
        let cycle = Ns(0.60);
        let stats = TlbStats { lookups: 1000, primary_hits: 900, backup_hits: 80, misses: 20 };
        let t = evaluate(&stats, TlbConfig::new(16).unwrap(), &cam, cycle, 3.0).unwrap();
        assert!(t.primary_cycles >= 1);
        assert!(t.backup_cycles > t.primary_cycles);
        assert!(t.tpi_ns > 0.0);
        // No backup hits, no misses, one-cycle primary => zero extra.
        let clean = TlbStats { lookups: 1000, primary_hits: 1000, backup_hits: 0, misses: 0 };
        let t = evaluate(&clean, TlbConfig::new(16).unwrap(), &cam, Ns(1.2), 3.0).unwrap();
        assert_eq!(t.tpi_ns, 0.0);
    }

    #[test]
    fn all_primary_split_evicts_instead_of_demoting() {
        let mut tlb = AdaptiveTlb::new(TlbConfig::new(128).unwrap());
        for p in 0..300u64 {
            tlb.access(p * PAGE_BYTES);
        }
        assert_eq!(tlb.resident(), TOTAL_ENTRIES);
        assert!(tlb.check_exclusive());
    }

    #[test]
    fn stats_ratios() {
        let s = TlbStats { lookups: 100, primary_hits: 80, backup_hits: 15, misses: 5 };
        assert!((s.miss_ratio() - 0.05).abs() < 1e-12);
        assert!((s.backup_ratio() - 0.15).abs() < 1e-12);
        assert_eq!(TlbStats::default().miss_ratio(), 0.0);
    }
}
