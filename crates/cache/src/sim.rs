//! Simulation drivers: run an address stream through the hierarchy.
//!
//! The paper fixes the boundary for an application's whole run
//! (process-level adaptivity), so a *sweep* re-runs the same trace at each
//! boundary position — reproduced here by cloning a pristine generator per
//! configuration (generators are deterministic, so every configuration
//! sees the identical reference stream, exactly like replaying an ATOM
//! trace file).

use crate::config::Boundary;
use crate::error::CacheError;
use crate::hierarchy::AdaptiveCacheHierarchy;
use crate::perf::{evaluate, PerfParams, TpiBreakdown};
use crate::stats::CacheStats;
use cap_obs::{CacheSimEvent, Event, Recorder};
use cap_timing::cacti::CacheTimingModel;
use cap_trace::mem::AddressStream;

/// Runs `refs` references from `stream` through `cache`, returning the
/// counters for exactly that span (pre-existing counters are not
/// disturbed; the returned value is the delta).
pub fn run<S: AddressStream>(mut stream: S, refs: u64, cache: &mut AdaptiveCacheHierarchy) -> CacheStats {
    let before = cache.stats();
    for _ in 0..refs {
        let r = stream.next_ref();
        cache.access(r);
    }
    let after = cache.stats();
    CacheStats {
        refs: after.refs - before.refs,
        l1_hits: after.l1_hits - before.l1_hits,
        l2_hits: after.l2_hits - before.l2_hits,
        misses: after.misses - before.misses,
        writebacks: after.writebacks - before.writebacks,
    }
}

/// [`run`] with trace emission: the interval's hit/miss counters are also
/// recorded as one [`cap_obs::CacheSimEvent`], numbered so a managed
/// cache run's simulator events line up with its decision events.
pub fn run_observed<S: AddressStream>(
    stream: S,
    refs: u64,
    cache: &mut AdaptiveCacheHierarchy,
    recorder: &dyn Recorder,
    label: Option<&str>,
    interval: u64,
) -> CacheStats {
    let stats = run(stream, refs, cache);
    if recorder.enabled() {
        recorder.record(&Event::CacheSim(CacheSimEvent {
            app: label.map(str::to_string),
            interval,
            refs: stats.refs,
            l1_hits: stats.l1_hits,
            l2_hits: stats.l2_hits,
            misses: stats.misses,
        }));
    }
    stats
}

/// One point of a boundary sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The fixed boundary simulated.
    pub boundary: Boundary,
    /// Raw counters.
    pub stats: CacheStats,
    /// The TPI decomposition at this boundary.
    pub tpi: TpiBreakdown,
}

/// Simulates the same trace at every given boundary (Figure 7
/// methodology: "the L1/L2 boundary is fixed throughout execution").
///
/// `make_stream` must return an identical pristine stream each call —
/// typically a clone of a seeded generator.
///
/// # Errors
///
/// Propagates timing-model errors for out-of-range boundaries.
pub fn sweep<S, F>(
    mut make_stream: F,
    refs: u64,
    boundaries: impl IntoIterator<Item = Boundary>,
    timing: &CacheTimingModel,
    params: PerfParams,
) -> Result<Vec<SweepPoint>, CacheError>
where
    S: AddressStream,
    F: FnMut() -> S,
{
    boundaries.into_iter().map(|b| sweep_point(make_stream(), refs, b, timing, params)).collect()
}

/// Simulates one fixed boundary — a single leg of a sweep. This is the
/// unit of work the parallel sweep engine fans out; [`sweep`] is exactly
/// a serial fold over it, which is what makes `--jobs N` output
/// byte-identical to `--jobs 1`.
///
/// # Errors
///
/// Propagates timing-model errors for out-of-range boundaries.
pub fn sweep_point<S: AddressStream>(
    stream: S,
    refs: u64,
    boundary: Boundary,
    timing: &CacheTimingModel,
    params: PerfParams,
) -> Result<SweepPoint, CacheError> {
    let mut cache = AdaptiveCacheHierarchy::try_with_geometry(*timing.geometry(), boundary)?;
    let stats = run(stream, refs, &mut cache);
    let tpi = evaluate(&stats, boundary, timing, params)?;
    Ok(SweepPoint { boundary, stats, tpi })
}

/// The sweep point with the lowest total TPI (the process-level adaptive
/// choice for this application).
///
/// Returns `None` for an empty sweep. Ties break toward the smaller
/// boundary (faster clock), matching the paper's preference for the
/// less-complex configuration when performance is equal.
pub fn best_point(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points.iter().min_by(|a, b| {
        let (ta, tb) = (a.tpi.total_tpi().value(), b.tpi.total_tpi().value());
        ta.total_cmp(&tb).then(a.boundary.cmp(&b.boundary))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_timing::Technology;
    use cap_trace::mem::{Region, RegionMix};

    fn timing() -> CacheTimingModel {
        CacheTimingModel::isca98(Technology::isca98_evaluation())
    }

    fn loop_stream(bytes: u64) -> RegionMix {
        RegionMix::builder(5)
            .region(Region::sequential_loop(0, bytes, 32), 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn run_counts_exactly_n_refs() {
        let mut cache = AdaptiveCacheHierarchy::isca98(Boundary::new(2).unwrap());
        let s = run(loop_stream(4096), 1000, &mut cache);
        assert_eq!(s.refs, 1000);
        assert!(s.is_consistent());
    }

    #[test]
    fn run_returns_delta_not_cumulative() {
        let mut cache = AdaptiveCacheHierarchy::isca98(Boundary::new(2).unwrap());
        let _ = run(loop_stream(4096), 500, &mut cache);
        let second = run(loop_stream(4096), 300, &mut cache);
        assert_eq!(second.refs, 300);
    }

    #[test]
    fn sweep_visits_all_boundaries_with_identical_traces() {
        let pristine = loop_stream(32 * 1024);
        let points = sweep(
            || pristine.clone(),
            60_000,
            Boundary::paper_sweep(),
            &timing(),
            PerfParams::isca98(3.0),
        )
        .unwrap();
        assert_eq!(points.len(), 8);
        for p in &points {
            assert_eq!(p.stats.refs, 60_000);
        }
        // A 32 KB loop fits from the 4-increment boundary onward: those
        // configurations see (almost) no steady-state L1 misses.
        let small = &points[0]; // 8 KB L1: loop thrashes it
        let big = &points[4]; // 40 KB L1: loop resident
        assert!(small.stats.l1_miss_ratio() > 0.9);
        assert!(big.stats.l1_miss_ratio() < 0.05);
    }

    #[test]
    fn best_point_trades_clock_against_misses() {
        // A hot working set that fits everywhere plus a stream that misses
        // everywhere: the miss time is clock-independent, so the fastest
        // clock (smallest boundary) wins on the base component.
        let pristine = RegionMix::builder(6)
            .region(Region::sequential_loop(0, 4 * 1024, 32), 9.0)
            .region(Region::random(1 << 30, 4 << 20), 1.0)
            .build()
            .unwrap();
        let points = sweep(
            || pristine.clone(),
            30_000,
            Boundary::paper_sweep(),
            &timing(),
            PerfParams::isca98(3.0),
        )
        .unwrap();
        let best = best_point(&points).unwrap();
        assert!(best.boundary.l1_kb() <= 16, "best was {}", best.boundary);

        // For a 48 KB working set, a boundary that captures it wins
        // despite the slower clock.
        let pristine = loop_stream(48 * 1024);
        let points = sweep(
            || pristine.clone(),
            60_000,
            Boundary::paper_sweep(),
            &timing(),
            PerfParams::isca98(3.0),
        )
        .unwrap();
        let best = best_point(&points).unwrap();
        assert!(best.boundary.l1_kb() >= 48, "best was {}", best.boundary);
    }

    #[test]
    fn best_point_empty_is_none() {
        assert!(best_point(&[]).is_none());
    }

    #[test]
    fn sweep_points_expose_tpi_decomposition() {
        let pristine = loop_stream(8 * 1024);
        let points = sweep(
            || pristine.clone(),
            5_000,
            [Boundary::new(2).unwrap()],
            &timing(),
            PerfParams::isca98(3.0),
        )
        .unwrap();
        let p = &points[0];
        assert!(p.tpi.total_tpi() >= p.tpi.base_tpi);
        assert!(p.tpi.ipc() <= crate::perf::BASE_IPC + 1e-9);
    }
}
