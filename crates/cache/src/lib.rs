//! The complexity-adaptive two-level data-cache hierarchy (paper §5.2).
//!
//! The evaluated structure is a single 128 KB array of sixteen 8 KB
//! two-way set-associative increments strung along a repeater-buffered
//! global bus, with a **movable L1/L2 boundary**: the first `k` increments
//! form the L1 D-cache (8·k KB, 2·k-way), the remaining `16-k` increments
//! form the L2 (exclusive). Because increments keep their contents when
//! the boundary moves, reconfiguration requires no invalidation or data
//! transfer — the paper's central cache property, enforced here as a
//! tested invariant.
//!
//! The mapping rule follows the paper exactly: index and tag bits are
//! constant (the boundary moves *ways*, not sets), exclusion guarantees a
//! block lives in at most one level, and an L2 hit swaps the block with an
//! L1 victim.
//!
//! Modules:
//!
//! * [`config`] — the [`config::Boundary`] newtype and the paper's
//!   configuration space;
//! * [`hierarchy`] — the cycle-level structure itself;
//! * [`stats`] — access outcome counters;
//! * [`perf`] — the blocking-cache TPI model (paper §5.1 methodology);
//! * [`sim`] — drivers that run an address stream through one or many
//!   boundary configurations;
//! * [`multisweep`] — the single-pass stack-distance engine that answers
//!   every boundary from one traversal, bit-identical to [`sim::sweep`].
//!
//! # Example
//!
//! ```
//! use cap_cache::config::Boundary;
//! use cap_cache::hierarchy::AdaptiveCacheHierarchy;
//! use cap_cache::stats::AccessOutcome;
//! use cap_trace::mem::{AccessKind, MemRef};
//!
//! let mut cache = AdaptiveCacheHierarchy::isca98(Boundary::new(2)?);
//! let r = MemRef { addr: 0x1234, kind: AccessKind::Read };
//! assert_eq!(cache.access(r), AccessOutcome::Miss);
//! assert_eq!(cache.access(r), AccessOutcome::L1Hit);
//! # Ok::<(), cap_cache::CacheError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod hierarchy;
pub mod inclusive;
pub mod multisweep;
pub mod perf;
pub mod sim;
pub mod stats;
pub mod tlb;

pub use config::Boundary;
pub use error::CacheError;
pub use hierarchy::AdaptiveCacheHierarchy;
pub use stats::{AccessOutcome, CacheStats};
