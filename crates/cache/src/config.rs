//! Configuration space of the adaptive cache hierarchy.

use crate::error::CacheError;
use cap_timing::cacti::CacheGeometry;
use std::fmt;

/// The number of increments in the paper's evaluated structure.
pub const ISCA98_INCREMENTS: usize = 16;

/// The largest L1 the paper sweeps: 64 KB = 8 increments ("thus far we
/// have limited our investigation of this design to L1 caches up to 64 KB
/// in size").
pub const PAPER_MAX_BOUNDARY: usize = 8;

/// The paper's best *conventional* configuration: a 16 KB 4-way L1 —
/// i.e. a fixed boundary of two 8 KB / 2-way increments.
pub const BEST_CONVENTIONAL_BOUNDARY: usize = 2;

/// The L1/L2 boundary position: the number of increments assigned to the
/// L1 D-cache.
///
/// A valid boundary for the paper's 16-increment structure is `1..=15`;
/// the paper's evaluation sweeps `1..=8` (8 KB – 64 KB L1).
///
/// # Example
///
/// ```
/// use cap_cache::config::Boundary;
///
/// let b = Boundary::new(2)?;
/// assert_eq!(b.l1_kb(), 16);
/// assert_eq!(b.l1_assoc(), 4);
/// assert_eq!(b.l2_kb(), 112);
/// # Ok::<(), cap_cache::CacheError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Boundary(usize);

impl Boundary {
    /// Creates a boundary for the paper's 16-increment structure.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidBoundary`] unless `increments_in_l1`
    /// is in `1..=15`.
    pub fn new(increments_in_l1: usize) -> Result<Self, CacheError> {
        Self::for_geometry(increments_in_l1, &CacheGeometry::isca98())
    }

    /// Creates a boundary for an arbitrary geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidBoundary`] unless the boundary leaves
    /// at least one increment on each side.
    pub fn for_geometry(increments_in_l1: usize, geometry: &CacheGeometry) -> Result<Self, CacheError> {
        if increments_in_l1 == 0 || increments_in_l1 >= geometry.increments {
            return Err(CacheError::InvalidBoundary {
                requested: increments_in_l1,
                increments: geometry.increments,
            });
        }
        Ok(Boundary(increments_in_l1))
    }

    /// The number of increments in the L1.
    #[inline]
    pub fn increments(self) -> usize {
        self.0
    }

    /// L1 capacity in kilobytes (8 KB per increment).
    pub fn l1_kb(self) -> usize {
        self.0 * 8
    }

    /// L1 associativity (2 ways per increment).
    pub fn l1_assoc(self) -> usize {
        self.0 * 2
    }

    /// L2 capacity in kilobytes for the paper's 128 KB structure.
    pub fn l2_kb(self) -> usize {
        (ISCA98_INCREMENTS - self.0) * 8
    }

    /// The boundary sweep of the paper's Figure 7: L1 sizes 8–64 KB.
    pub fn paper_sweep() -> impl Iterator<Item = Boundary> {
        (1..=PAPER_MAX_BOUNDARY).map(Boundary)
    }

    /// The paper's best conventional configuration (16 KB 4-way L1).
    pub fn best_conventional() -> Boundary {
        Boundary(BEST_CONVENTIONAL_BOUNDARY)
    }
}

impl fmt::Display for Boundary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L1={}KB/{}-way", self.l1_kb(), self.l1_assoc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range() {
        assert!(Boundary::new(0).is_err());
        assert!(Boundary::new(16).is_err());
        assert!(Boundary::new(1).is_ok());
        assert!(Boundary::new(15).is_ok());
    }

    #[test]
    fn derived_parameters() {
        let b = Boundary::new(6).unwrap();
        assert_eq!(b.l1_kb(), 48);
        assert_eq!(b.l1_assoc(), 12);
        assert_eq!(b.l2_kb(), 80);
        assert_eq!(b.increments(), 6);
    }

    #[test]
    fn paper_sweep_is_8_to_64_kb() {
        let sizes: Vec<usize> = Boundary::paper_sweep().map(|b| b.l1_kb()).collect();
        assert_eq!(sizes, vec![8, 16, 24, 32, 40, 48, 56, 64]);
    }

    #[test]
    fn best_conventional_is_16kb_4way() {
        let b = Boundary::best_conventional();
        assert_eq!(b.l1_kb(), 16);
        assert_eq!(b.l1_assoc(), 4);
    }

    #[test]
    fn display_format() {
        assert_eq!(Boundary::new(2).unwrap().to_string(), "L1=16KB/4-way");
    }

    #[test]
    fn custom_geometry_bounds() {
        let mut g = CacheGeometry::isca98();
        g.increments = 4;
        assert!(Boundary::for_geometry(3, &g).is_ok());
        assert!(Boundary::for_geometry(4, &g).is_err());
    }
}
