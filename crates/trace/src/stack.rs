//! LRU stack-distance (reuse-distance) profiling.
//!
//! The workload crate calibrates each synthetic application's region
//! mixture against a target miss-ratio-versus-capacity curve. This module
//! supplies the measuring instrument: a single pass over an address stream
//! yields, for *every* fully associative LRU capacity at once, the exact
//! miss ratio (Mattson's stack algorithm).
//!
//! The implementation uses the classic Fenwick-tree formulation: each
//! block's most recent access position is marked in a binary indexed tree,
//! and the reuse distance of an access is the number of *distinct* blocks
//! touched since that block's previous access — a suffix count.
//!
//! # Example
//!
//! ```
//! use cap_trace::stack::StackProfiler;
//!
//! let mut p = StackProfiler::new(32);
//! for round in 0..4 {
//!     for blk in 0..8u64 {
//!         p.observe(blk * 32);
//!     }
//!     let _ = round;
//! }
//! // 8 distinct blocks swept cyclically: an LRU cache of 8 blocks hits
//! // after the cold pass; a cache of 4 blocks always misses.
//! assert!(p.miss_ratio_at_blocks(8) < 0.3);
//! assert_eq!(p.miss_ratio_at_blocks(4), 1.0);
//! ```

use std::collections::HashMap;

/// Mattson stack-distance profiler over block-granular addresses.
#[derive(Debug, Clone)]
pub struct StackProfiler {
    block_shift: u32,
    /// Block -> most recent access position (1-based in the Fenwick tree).
    last_pos: HashMap<u64, usize>,
    /// Fenwick tree marking active (most recent) positions.
    tree: Vec<u32>,
    /// Number of accesses observed so far.
    time: usize,
    /// `hist[d]` = number of accesses with reuse distance exactly `d`.
    hist: Vec<u64>,
    cold: u64,
}

impl StackProfiler {
    /// Creates a profiler with the given cache-block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    pub fn new(block_bytes: u64) -> Self {
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        StackProfiler {
            block_shift: block_bytes.trailing_zeros(),
            last_pos: HashMap::new(),
            tree: vec![0; 1024],
            time: 0,
            hist: Vec::new(),
            cold: 0,
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    fn prefix(&self, mut i: usize) -> u64 {
        let mut s = 0u64;
        while i > 0 {
            s += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }

    fn grow(&mut self) {
        let new_len = self.tree.len() * 2;
        let mut bigger = StackProfiler {
            block_shift: self.block_shift,
            last_pos: HashMap::with_capacity(self.last_pos.len()),
            tree: vec![0; new_len],
            time: self.time,
            hist: std::mem::take(&mut self.hist),
            cold: self.cold,
        };
        for (&blk, &pos) in &self.last_pos {
            bigger.last_pos.insert(blk, pos);
            bigger.add(pos, 1);
        }
        *self = bigger;
    }

    /// Observes one access at byte address `addr`.
    pub fn observe(&mut self, addr: u64) {
        let blk = addr >> self.block_shift;
        self.time += 1;
        if self.time + 1 >= self.tree.len() {
            self.grow();
        }
        let active = self.last_pos.len() as u64;
        match self.last_pos.get(&blk).copied() {
            Some(p) => {
                // Distinct blocks accessed since: active positions after p.
                let distance = (active - self.prefix(p)) as usize;
                if distance >= self.hist.len() {
                    self.hist.resize(distance + 1, 0);
                }
                self.hist[distance] += 1;
                self.add(p, -1);
            }
            None => self.cold += 1,
        }
        let t = self.time;
        self.add(t, 1);
        self.last_pos.insert(blk, t);
    }

    /// Total accesses observed.
    pub fn total(&self) -> u64 {
        self.time as u64
    }

    /// Cold (first-touch) accesses observed.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Number of distinct blocks touched.
    pub fn footprint_blocks(&self) -> u64 {
        self.last_pos.len() as u64
    }

    /// Miss ratio of a fully associative LRU cache of `blocks` blocks:
    /// cold misses plus all accesses whose reuse distance is at least
    /// `blocks`. Returns 0 when nothing was observed.
    pub fn miss_ratio_at_blocks(&self, blocks: u64) -> f64 {
        if self.time == 0 {
            return 0.0;
        }
        let reuse_misses: u64 = self
            .hist
            .iter()
            .enumerate()
            .skip(blocks as usize)
            .map(|(_, &c)| c)
            .sum();
        (self.cold + reuse_misses) as f64 / self.time as f64
    }

    /// Miss ratio at a capacity expressed in bytes.
    pub fn miss_ratio_at_bytes(&self, bytes: u64) -> f64 {
        self.miss_ratio_at_blocks(bytes >> self.block_shift)
    }

    /// The raw reuse-distance histogram (`hist[d]` = accesses at distance
    /// exactly `d`; cold misses excluded).
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(p: &mut StackProfiler, blocks: u64, rounds: usize) {
        for _ in 0..rounds {
            for b in 0..blocks {
                p.observe(b * 32);
            }
        }
    }

    #[test]
    fn cyclic_sweep_is_all_or_nothing() {
        let mut p = StackProfiler::new(32);
        sweep(&mut p, 100, 10);
        // Capacity >= working set: only the cold pass misses.
        let big = p.miss_ratio_at_blocks(100);
        assert!((big - 0.1).abs() < 1e-9, "got {big}");
        // Capacity below working set: LRU pathology, everything misses.
        assert_eq!(p.miss_ratio_at_blocks(99), 1.0);
        assert_eq!(p.miss_ratio_at_blocks(10), 1.0);
    }

    #[test]
    fn repeated_single_block_always_hits() {
        let mut p = StackProfiler::new(32);
        for _ in 0..50 {
            p.observe(0x1000);
        }
        assert_eq!(p.cold_misses(), 1);
        assert!((p.miss_ratio_at_blocks(1) - 0.02).abs() < 1e-9);
    }

    #[test]
    fn miss_ratio_monotone_in_capacity() {
        let mut p = StackProfiler::new(32);
        // Mixed pattern: two interleaved sweeps of different sizes.
        for i in 0..5000u64 {
            p.observe((i % 37) * 32);
            p.observe(0x10_0000 + (i % 211) * 32);
        }
        let mut prev = 1.0;
        for cap in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            let m = p.miss_ratio_at_blocks(cap);
            assert!(m <= prev + 1e-12, "miss ratio must not increase with capacity");
            prev = m;
        }
    }

    #[test]
    fn footprint_counts_distinct_blocks() {
        let mut p = StackProfiler::new(64);
        p.observe(0);
        p.observe(63); // same block
        p.observe(64); // next block
        p.observe(128);
        assert_eq!(p.footprint_blocks(), 3);
        assert_eq!(p.total(), 4);
    }

    #[test]
    fn byte_capacity_conversion() {
        let mut p = StackProfiler::new(32);
        sweep(&mut p, 8, 4);
        assert_eq!(p.miss_ratio_at_bytes(8 * 32), p.miss_ratio_at_blocks(8));
    }

    #[test]
    fn random_uniform_matches_analytic_hit_ratio() {
        // Uniform random over S blocks with LRU capacity C < S hits with
        // probability about C/S in steady state.
        use crate::rng::TraceRng;
        let mut rng = TraceRng::seeded(77);
        let mut p = StackProfiler::new(32);
        let s = 1000u64;
        for _ in 0..200_000 {
            p.observe(rng.below(s) * 32);
        }
        let measured_hit = 1.0 - p.miss_ratio_at_blocks(250);
        assert!((measured_hit - 0.25).abs() < 0.02, "got {measured_hit}");
    }

    #[test]
    fn grows_past_initial_tree_capacity() {
        let mut p = StackProfiler::new(32);
        sweep(&mut p, 3, 2000); // 6000 accesses > initial 1024 slots
        assert_eq!(p.total(), 6000);
        assert!(p.miss_ratio_at_blocks(3) < 0.01);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_blocks() {
        let _ = StackProfiler::new(48);
    }

    #[test]
    fn histogram_exposed() {
        let mut p = StackProfiler::new(32);
        p.observe(0);
        p.observe(32);
        p.observe(0); // distance 1
        assert_eq!(p.histogram().get(1), Some(&1));
    }
}
