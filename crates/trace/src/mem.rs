//! Synthetic memory-reference streams.
//!
//! A stream is a weighted mixture of [`Region`]s, each modelling one data
//! structure of the application:
//!
//! * [`Region::sequential_loop`] — a repeated sequential sweep (arrays in
//!   scientific loop nests). Under LRU this is all-hit when the region
//!   fits in cache and all-miss when it does not, producing the sharp
//!   working-set knees the paper observes (appcg's drop past 48 KB).
//! * [`Region::random`] — uniform random touches (hash tables, heaps).
//!   Produces gradual miss-ratio curves: hit ratio ≈ capacity / region.
//! * [`Region::pointer_chase`] — a deterministic pseudo-random walk
//!   (linked structures); like `random` but with a fixed revisit sequence.
//! * [`Region::strided`] — a sweep touching every `stride` bytes, for
//!   large-stride array accesses that waste block capacity.
//!
//! The per-application mixtures live in `cap-workloads`; this module only
//! provides the machinery.

use crate::error::TraceError;
use crate::rng::TraceRng;

/// Whether a reference reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One data-cache reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Byte address.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
}

/// An infinite stream of data-cache references.
pub trait AddressStream {
    /// Produces the next reference.
    fn next_ref(&mut self) -> MemRef;

    /// Collects the next `n` references into a vector (convenience for
    /// tests and small experiments; simulators should pull one at a time).
    fn take_refs(&mut self, n: usize) -> Vec<MemRef>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_ref()).collect()
    }
}

impl<S: AddressStream + ?Sized> AddressStream for &mut S {
    fn next_ref(&mut self) -> MemRef {
        (**self).next_ref()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Pattern {
    SequentialLoop { stride: u64 },
    Strided { stride: u64 },
    Random,
    PointerChase,
}

/// One synthetic data structure: a contiguous address range with an access
/// pattern and a write fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    base: u64,
    size: u64,
    pattern: Pattern,
    write_frac: f64,
}

impl Region {
    /// A repeated sequential sweep over `size` bytes touching every
    /// `stride` bytes. All-hit once resident; all-miss (under LRU) when the
    /// region exceeds its cache share.
    pub fn sequential_loop(base: u64, size: u64, stride: u64) -> Self {
        Region { base, size, pattern: Pattern::SequentialLoop { stride }, write_frac: 0.25 }
    }

    /// A strided sweep (alias of [`Region::sequential_loop`] semantics but
    /// kept distinct for self-documenting workload definitions).
    pub fn strided(base: u64, size: u64, stride: u64) -> Self {
        Region { base, size, pattern: Pattern::Strided { stride }, write_frac: 0.25 }
    }

    /// Uniform random touches over `size` bytes.
    pub fn random(base: u64, size: u64) -> Self {
        Region { base, size, pattern: Pattern::Random, write_frac: 0.25 }
    }

    /// A deterministic pseudo-random pointer chase over `size` bytes.
    pub fn pointer_chase(base: u64, size: u64) -> Self {
        Region { base, size, pattern: Pattern::PointerChase, write_frac: 0.05 }
    }

    /// Overrides the fraction of references that are stores (default 0.25,
    /// 0.05 for pointer chases).
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `[0, 1]`.
    pub fn with_write_frac(mut self, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "write fraction must be in [0,1]");
        self.write_frac = frac;
        self
    }

    /// The region's base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The region's size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    fn validate(&self) -> Result<(), TraceError> {
        if self.size == 0 {
            return Err(TraceError::InvalidParameter { what: "region size must be positive" });
        }
        match self.pattern {
            Pattern::SequentialLoop { stride } | Pattern::Strided { stride } => {
                if stride == 0 || stride > self.size {
                    return Err(TraceError::InvalidParameter {
                        what: "stride must be positive and no larger than the region",
                    });
                }
            }
            Pattern::Random | Pattern::PointerChase => {}
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct RegionState {
    region: Region,
    /// Current offset for sweeps; current position for chases.
    cursor: u64,
}

impl RegionState {
    fn next_addr(&mut self, rng: &mut TraceRng) -> u64 {
        let r = &self.region;
        match r.pattern {
            Pattern::SequentialLoop { stride } | Pattern::Strided { stride } => {
                let addr = r.base + self.cursor;
                self.cursor += stride;
                if self.cursor >= r.size {
                    self.cursor = 0;
                }
                addr
            }
            Pattern::Random => r.base + rng.below(r.size),
            Pattern::PointerChase => {
                // A full-period LCG walk over the region's 16-byte nodes:
                // deterministic "next pointer" with no spatial locality.
                let nodes = (r.size / 16).max(1);
                self.cursor = (self.cursor.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407)) % nodes;
                r.base + self.cursor * 16
            }
        }
    }
}

/// A weighted mixture of regions: the concrete [`AddressStream`] used by
/// every synthetic workload.
///
/// # Example
///
/// ```
/// use cap_trace::mem::{Region, RegionMix};
/// use cap_trace::AddressStream;
///
/// let mut gen = RegionMix::builder(1)
///     .region(Region::sequential_loop(0, 4096, 32), 1.0)
///     .build()?;
/// // A lone sequential loop just sweeps.
/// assert_eq!(gen.next_ref().addr, 0);
/// assert_eq!(gen.next_ref().addr, 32);
/// # Ok::<(), cap_trace::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegionMix {
    states: Vec<RegionState>,
    weights: Vec<f64>,
    rng: TraceRng,
}

impl RegionMix {
    /// Starts building a mixture; `seed` makes the stream reproducible.
    pub fn builder(seed: u64) -> RegionMixBuilder {
        RegionMixBuilder { regions: Vec::new(), seed }
    }

    /// The number of regions in the mixture.
    pub fn num_regions(&self) -> usize {
        self.states.len()
    }

    /// The total footprint (sum of region sizes) in bytes.
    pub fn footprint(&self) -> u64 {
        self.states.iter().map(|s| s.region.size).sum()
    }
}

impl AddressStream for RegionMix {
    fn next_ref(&mut self) -> MemRef {
        let i = if self.states.len() == 1 { 0 } else { self.rng.weighted(&self.weights) };
        let write_frac = self.states[i].region.write_frac;
        let addr = self.states[i].next_addr(&mut self.rng);
        let kind = if self.rng.chance(write_frac) { AccessKind::Write } else { AccessKind::Read };
        MemRef { addr, kind }
    }
}

/// Builder for [`RegionMix`].
#[derive(Debug, Clone)]
pub struct RegionMixBuilder {
    regions: Vec<(Region, f64)>,
    seed: u64,
}

impl RegionMixBuilder {
    /// Adds a region with a relative access weight.
    pub fn region(mut self, region: Region, weight: f64) -> Self {
        self.regions.push((region, weight));
        self
    }

    /// Builds the mixture.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] if no regions were added, or
    /// [`TraceError::InvalidParameter`] if any region is degenerate or any
    /// weight is non-positive or non-finite.
    pub fn build(self) -> Result<RegionMix, TraceError> {
        if self.regions.is_empty() {
            return Err(TraceError::Empty { what: "region mix" });
        }
        for (r, w) in &self.regions {
            r.validate()?;
            if !w.is_finite() || *w <= 0.0 {
                return Err(TraceError::InvalidParameter { what: "region weight must be positive and finite" });
            }
        }
        let (regions, weights): (Vec<_>, Vec<_>) = self.regions.into_iter().unzip();
        Ok(RegionMix {
            states: regions.into_iter().map(|region| RegionState { region, cursor: 0 }).collect(),
            weights,
            rng: TraceRng::seeded(self.seed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(mix: &mut RegionMix, n: usize) -> Vec<MemRef> {
        mix.take_refs(n)
    }

    #[test]
    fn sequential_loop_wraps() {
        let mut m = RegionMix::builder(0)
            .region(Region::sequential_loop(100, 96, 32), 1.0)
            .build()
            .unwrap();
        let addrs: Vec<u64> = collect(&mut m, 7).iter().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![100, 132, 164, 100, 132, 164, 100]);
    }

    #[test]
    fn random_stays_in_region() {
        let mut m = RegionMix::builder(1)
            .region(Region::random(0x4000, 0x1000), 1.0)
            .build()
            .unwrap();
        for r in collect(&mut m, 2000) {
            assert!((0x4000..0x5000).contains(&r.addr));
        }
    }

    #[test]
    fn pointer_chase_stays_in_region_and_varies() {
        let mut m = RegionMix::builder(2)
            .region(Region::pointer_chase(0x8000, 0x2000), 1.0)
            .build()
            .unwrap();
        let refs = collect(&mut m, 1000);
        let distinct: std::collections::HashSet<u64> = refs.iter().map(|r| r.addr).collect();
        assert!(distinct.len() > 100);
        for r in refs {
            assert!((0x8000..0xA000).contains(&r.addr));
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let build = || {
            RegionMix::builder(42)
                .region(Region::random(0, 1 << 20), 1.0)
                .region(Region::sequential_loop(1 << 24, 1 << 16, 32), 2.0)
                .build()
                .unwrap()
        };
        let a = collect(&mut build(), 500);
        let b = collect(&mut build(), 500);
        assert_eq!(a, b);
    }

    #[test]
    fn weights_bias_region_selection() {
        let mut m = RegionMix::builder(3)
            .region(Region::random(0, 0x1000), 9.0)
            .region(Region::random(0x1_0000_0000, 0x1000), 1.0)
            .build()
            .unwrap();
        let refs = collect(&mut m, 20_000);
        let hot = refs.iter().filter(|r| r.addr < 0x1000).count();
        let frac = hot as f64 / refs.len() as f64;
        assert!((frac - 0.9).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn write_fraction_respected() {
        let mut m = RegionMix::builder(4)
            .region(Region::random(0, 0x10000).with_write_frac(0.5), 1.0)
            .build()
            .unwrap();
        let refs = collect(&mut m, 20_000);
        let writes = refs.iter().filter(|r| r.kind == AccessKind::Write).count();
        let frac = writes as f64 / refs.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn builder_validation() {
        assert!(RegionMix::builder(0).build().is_err());
        assert!(RegionMix::builder(0)
            .region(Region::sequential_loop(0, 0, 32), 1.0)
            .build()
            .is_err());
        assert!(RegionMix::builder(0)
            .region(Region::sequential_loop(0, 64, 0), 1.0)
            .build()
            .is_err());
        assert!(RegionMix::builder(0)
            .region(Region::random(0, 64), 0.0)
            .build()
            .is_err());
        assert!(RegionMix::builder(0)
            .region(Region::random(0, 64), f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    #[should_panic(expected = "write fraction")]
    fn write_frac_out_of_range_panics() {
        let _ = Region::random(0, 64).with_write_frac(1.5);
    }

    #[test]
    fn footprint_sums_regions() {
        let m = RegionMix::builder(0)
            .region(Region::random(0, 1000), 1.0)
            .region(Region::random(4096, 500), 1.0)
            .build()
            .unwrap();
        assert_eq!(m.footprint(), 1500);
        assert_eq!(m.num_regions(), 2);
    }

    #[test]
    fn stream_by_mut_reference() {
        let mut m = RegionMix::builder(5)
            .region(Region::random(0, 0x1000), 1.0)
            .build()
            .unwrap();
        fn consume<S: AddressStream>(mut s: S) -> MemRef {
            s.next_ref()
        }
        let _ = consume(&mut m);
        let _ = m.next_ref();
    }
}
