//! Deterministic random-number generation for trace synthesis.
//!
//! Every generator in this crate derives all of its randomness from a
//! [`TraceRng`] seeded with a caller-supplied `u64`, so any trace —
//! billions of events long — is exactly reproducible from its seed. The
//! wrapper also centralizes the handful of distributions the generators
//! need (weighted choice, geometric, bounded uniform) so they are
//! implemented once and tested once.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A small, fast, deterministic RNG for trace generation.
///
/// # Example
///
/// ```
/// use cap_trace::TraceRng;
///
/// let mut a = TraceRng::seeded(7);
/// let mut b = TraceRng::seeded(7);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
#[derive(Debug, Clone)]
pub struct TraceRng {
    inner: SmallRng,
}

impl TraceRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seeded(seed: u64) -> Self {
        TraceRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator; useful for giving each
    /// region or phase its own stream while keeping a single root seed.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TraceRng::seeded(s)
    }

    /// A uniform integer in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// A uniform integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A geometric variate with the given mean (support `1, 2, 3, ...`).
    ///
    /// Returns 1 when `mean <= 1`.
    pub fn geometric(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        // Success probability p = 1/mean; inverse-CDF sampling.
        let p = 1.0 / mean;
        let u = self.unit().max(f64::MIN_POSITIVE);
        let v = (u.ln() / (1.0 - p).ln()).floor() as u64 + 1;
        v.max(1)
    }

    /// Chooses an index according to the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(!weights.is_empty() && total > 0.0, "weights must be nonempty with positive sum");
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Jitters `value` multiplicatively by up to `frac` in either
    /// direction, never returning less than 1.
    pub fn jitter(&mut self, value: u64, frac: f64) -> u64 {
        if frac <= 0.0 || value == 0 {
            return value.max(1);
        }
        let f = 1.0 + (self.unit() * 2.0 - 1.0) * frac;
        ((value as f64 * f).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = TraceRng::seeded(123);
        let mut b = TraceRng::seeded(123);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TraceRng::seeded(1);
        let mut b = TraceRng::seeded(2);
        let same = (0..32).filter(|_| a.below(u64::MAX) == b.below(u64::MAX)).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = TraceRng::seeded(9);
        let mut root2 = TraceRng::seeded(9);
        let mut c1 = root1.fork(5);
        let mut c2 = root2.fork(5);
        assert_eq!(c1.below(1000), c2.below(1000));
        let mut c3 = root1.fork(6);
        // Extremely unlikely to match a differently salted child.
        assert!((0..16).any(|_| c1.below(u64::MAX) != c3.below(u64::MAX)));
    }

    #[test]
    fn below_and_between_bounds() {
        let mut r = TraceRng::seeded(4);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.between(5, 7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = TraceRng::seeded(11);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.geometric(8.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.3, "got {mean}");
    }

    #[test]
    fn geometric_degenerate() {
        let mut r = TraceRng::seeded(3);
        assert_eq!(r.geometric(0.5), 1);
        assert_eq!(r.geometric(1.0), 1);
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = TraceRng::seeded(8);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.03, "got {frac2}");
    }

    #[test]
    fn weighted_zero_weight_never_chosen() {
        let mut r = TraceRng::seeded(8);
        for _ in 0..5_000 {
            assert_ne!(r.weighted(&[1.0, 0.0, 1.0]), 1);
        }
    }

    #[test]
    #[should_panic(expected = "weights must be nonempty")]
    fn weighted_rejects_empty() {
        TraceRng::seeded(0).weighted(&[]);
    }

    #[test]
    fn jitter_stays_near_value() {
        let mut r = TraceRng::seeded(2);
        for _ in 0..1000 {
            let v = r.jitter(100, 0.25);
            assert!((75..=125).contains(&v), "got {v}");
        }
        assert_eq!(r.jitter(100, 0.0), 100);
        assert_eq!(r.jitter(0, 0.5), 1);
    }

    #[test]
    fn unit_in_range_and_chance_extremes() {
        let mut r = TraceRng::seeded(5);
        for _ in 0..100 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            assert!(r.chance(1.0));
            assert!(!r.chance(0.0));
        }
    }
}
