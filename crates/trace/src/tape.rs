//! A shared, lazily materialized instruction tape.
//!
//! A window sweep replays the *same* instruction stream at every window
//! size. The legacy path re-synthesizes the stream per configuration by
//! cloning a pristine generator; [`InstTape`] instead records the
//! generator's output once and hands out independent [`TapeCursor`]s, so
//! the synthesis cost is paid a single time per sweep.
//!
//! The tape is lazy: it generates only as far as its furthest cursor has
//! read. Different window sizes drain slightly different prefixes (a
//! core fetches `committed + occupancy` instructions), so the tape ends
//! up holding the longest prefix any configuration needed — no
//! over-generation, no truncation.
//!
//! Cursors borrow the tape immutably and may be created freely; the
//! recorded instructions are identical to what the wrapped generator
//! would have produced, so a simulation driven by a cursor is
//! bit-identical to one driven by a fresh generator clone.

use crate::inst::{Inst, InstStream};
use std::cell::RefCell;

struct TapeInner<S> {
    gen: S,
    buf: Vec<Inst>,
}

/// A recorded instruction stream that many cursors can replay.
///
/// # Example
///
/// ```
/// use cap_trace::inst::{IlpParams, SegmentIlp};
/// use cap_trace::tape::InstTape;
/// use cap_trace::InstStream;
///
/// let tape = InstTape::new(SegmentIlp::new(IlpParams::balanced(), 7)?);
/// let a: Vec<_> = tape.cursor().take_insts(100);
/// let b: Vec<_> = tape.cursor().take_insts(100);
/// assert_eq!(a, b, "every cursor replays the same prefix");
/// assert_eq!(tape.generated(), 100, "generated once, not twice");
/// # Ok::<(), cap_trace::TraceError>(())
/// ```
pub struct InstTape<S> {
    inner: RefCell<TapeInner<S>>,
}

impl<S: InstStream> InstTape<S> {
    /// Wraps a generator. Nothing is generated until a cursor reads.
    pub fn new(gen: S) -> Self {
        InstTape { inner: RefCell::new(TapeInner { gen, buf: Vec::new() }) }
    }

    /// A new cursor positioned at the start of the stream.
    pub fn cursor(&self) -> TapeCursor<'_, S> {
        TapeCursor { tape: self, pos: 0 }
    }

    /// How many instructions have been materialized so far.
    pub fn generated(&self) -> usize {
        self.inner.borrow().buf.len()
    }

    fn get(&self, index: usize) -> Inst {
        let mut inner = self.inner.borrow_mut();
        while inner.buf.len() <= index {
            let inst = inner.gen.next_inst();
            inner.buf.push(inst);
        }
        inner.buf[index]
    }
}

/// An [`InstStream`] replaying an [`InstTape`] from the beginning.
pub struct TapeCursor<'a, S> {
    tape: &'a InstTape<S>,
    pos: usize,
}

impl<S: InstStream> InstStream for TapeCursor<'_, S> {
    fn next_inst(&mut self) -> Inst {
        let inst = self.tape.get(self.pos);
        self.pos += 1;
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{IlpParams, SegmentIlp};

    fn gen(seed: u64) -> SegmentIlp {
        SegmentIlp::new(IlpParams::balanced(), seed).unwrap()
    }

    #[test]
    fn cursor_replays_generator_exactly() {
        let direct = gen(3).take_insts(5000);
        let tape = InstTape::new(gen(3));
        let replayed = tape.cursor().take_insts(5000);
        assert_eq!(direct, replayed);
    }

    #[test]
    fn interleaved_cursors_agree() {
        let tape = InstTape::new(gen(9));
        let mut a = tape.cursor();
        let mut b = tape.cursor();
        for i in 0..1000u64 {
            // b trails a by one instruction; both must see the same seqs.
            let x = a.next_inst();
            assert_eq!(x.seq, i);
            if i > 0 {
                assert_eq!(b.next_inst().seq, i - 1);
            }
        }
    }

    #[test]
    fn tape_grows_to_furthest_reader_only() {
        let tape = InstTape::new(gen(1));
        let _ = tape.cursor().take_insts(10);
        assert_eq!(tape.generated(), 10);
        let _ = tape.cursor().take_insts(300);
        assert_eq!(tape.generated(), 300);
        let _ = tape.cursor().take_insts(50);
        assert_eq!(tape.generated(), 300, "shorter reads reuse the buffer");
    }
}
