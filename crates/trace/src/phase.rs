//! Phase schedules: time-varying generator behaviour.
//!
//! The paper's Section 6 studies *intra-application* diversity — turb3d
//! alternates between long stretches favouring a 64- versus a 128-entry
//! window (Figure 12), and vortex alternates its best configuration every
//! ~15 intervals of 2000 instructions in a regular pattern, with other
//! stretches that are irregular (Figure 13). This module provides the
//! machinery to synthesize such behaviour: a [`PhasedIlp`] instruction
//! stream that switches [`IlpParams`] on an instruction-count schedule,
//! and a [`PhasedMem`] address stream that switches between prebuilt
//! region mixtures.

use crate::error::TraceError;
use crate::inst::{IlpParams, Inst, InstStream, SegmentIlp};
use crate::mem::{AddressStream, MemRef, RegionMix};

/// One phase of a schedule: parameters plus a duration in events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase<P> {
    /// Generator parameters during the phase.
    pub params: P,
    /// Phase duration, in events (instructions or references).
    pub len: u64,
}

impl<P> Phase<P> {
    /// Creates a phase.
    pub fn new(params: P, len: u64) -> Self {
        Phase { params, len }
    }
}

/// An instruction stream whose ILP parameters follow a repeating schedule.
///
/// # Example
///
/// ```
/// use cap_trace::inst::IlpParams;
/// use cap_trace::phase::{Phase, PhasedIlp};
/// use cap_trace::InstStream;
///
/// let mut low = IlpParams::balanced();
/// low.cross_dep_prob = 1.0;
/// let schedule = vec![
///     Phase::new(IlpParams::balanced(), 30_000),
///     Phase::new(low, 30_000),
/// ];
/// let mut gen = PhasedIlp::new(schedule, 11)?;
/// let _first = gen.next_inst();
/// assert_eq!(gen.current_phase(), 0);
/// # Ok::<(), cap_trace::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhasedIlp {
    schedule: Vec<Phase<IlpParams>>,
    gen: SegmentIlp,
    phase_idx: usize,
    remaining: u64,
}

impl PhasedIlp {
    /// Creates a phased stream. The schedule repeats forever.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty schedule and
    /// [`TraceError::InvalidParameter`] if any phase has zero length or
    /// invalid parameters.
    pub fn new(schedule: Vec<Phase<IlpParams>>, seed: u64) -> Result<Self, TraceError> {
        if schedule.is_empty() {
            return Err(TraceError::Empty { what: "phase schedule" });
        }
        for p in &schedule {
            p.params.validate()?;
            if p.len == 0 {
                return Err(TraceError::InvalidParameter { what: "phase length must be positive" });
            }
        }
        let gen = SegmentIlp::new(schedule[0].params, seed)?;
        let remaining = schedule[0].len;
        Ok(PhasedIlp { schedule, gen, phase_idx: 0, remaining })
    }

    /// Index of the phase the *next* instruction belongs to.
    pub fn current_phase(&self) -> usize {
        self.phase_idx
    }

    /// The schedule's total period, in instructions.
    pub fn period(&self) -> u64 {
        self.schedule.iter().map(|p| p.len).sum()
    }
}

impl InstStream for PhasedIlp {
    fn next_inst(&mut self) -> Inst {
        if self.remaining == 0 {
            self.phase_idx = (self.phase_idx + 1) % self.schedule.len();
            self.remaining = self.schedule[self.phase_idx].len;
            self.gen
                .set_params(self.schedule[self.phase_idx].params)
                .expect("schedule parameters were validated at construction");
        }
        self.remaining -= 1;
        self.gen.next_inst()
    }
}

/// An address stream that rotates among prebuilt region mixtures on a
/// reference-count schedule. Each mixture keeps its own sweep state across
/// revisits, so returning to a phase resumes where it left off.
#[derive(Debug, Clone)]
pub struct PhasedMem {
    phases: Vec<(RegionMix, u64)>,
    phase_idx: usize,
    remaining: u64,
}

impl PhasedMem {
    /// Creates a phased address stream. The schedule repeats forever.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty schedule and
    /// [`TraceError::InvalidParameter`] for a zero-length phase.
    pub fn new(phases: Vec<(RegionMix, u64)>) -> Result<Self, TraceError> {
        if phases.is_empty() {
            return Err(TraceError::Empty { what: "phase schedule" });
        }
        if phases.iter().any(|(_, len)| *len == 0) {
            return Err(TraceError::InvalidParameter { what: "phase length must be positive" });
        }
        let remaining = phases[0].1;
        Ok(PhasedMem { phases, phase_idx: 0, remaining })
    }

    /// Index of the phase the *next* reference belongs to.
    pub fn current_phase(&self) -> usize {
        self.phase_idx
    }
}

impl AddressStream for PhasedMem {
    fn next_ref(&mut self) -> MemRef {
        if self.remaining == 0 {
            self.phase_idx = (self.phase_idx + 1) % self.phases.len();
            self.remaining = self.phases[self.phase_idx].1;
        }
        self.remaining -= 1;
        self.phases[self.phase_idx].0.next_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Region;

    fn serial() -> IlpParams {
        let mut p = IlpParams::balanced();
        p.cross_dep_prob = 1.0;
        p.jitter = 0.0;
        p
    }

    fn parallel() -> IlpParams {
        let mut p = IlpParams::balanced();
        p.cross_dep_prob = 0.0;
        p.jitter = 0.0;
        p
    }

    #[test]
    fn phases_advance_and_wrap() {
        let mut g = PhasedIlp::new(
            vec![Phase::new(serial(), 10), Phase::new(parallel(), 5)],
            1,
        )
        .unwrap();
        assert_eq!(g.period(), 15);
        for _ in 0..10 {
            assert_eq!(g.current_phase(), 0);
            let _ = g.next_inst();
        }
        let _ = g.next_inst();
        assert_eq!(g.current_phase(), 1);
        for _ in 0..4 {
            let _ = g.next_inst();
        }
        let _ = g.next_inst();
        assert_eq!(g.current_phase(), 0, "schedule wraps");
    }

    #[test]
    fn seq_continuous_across_phases() {
        let mut g = PhasedIlp::new(
            vec![Phase::new(serial(), 7), Phase::new(parallel(), 7)],
            1,
        )
        .unwrap();
        for (i, inst) in g.take_insts(50).into_iter().enumerate() {
            assert_eq!(inst.seq, i as u64);
        }
    }

    #[test]
    fn validation() {
        assert!(PhasedIlp::new(vec![], 0).is_err());
        assert!(PhasedIlp::new(vec![Phase::new(serial(), 0)], 0).is_err());
        let mut bad = serial();
        bad.chain_len = 0;
        assert!(PhasedIlp::new(vec![Phase::new(bad, 5)], 0).is_err());
    }

    #[test]
    fn phased_mem_switches_streams() {
        let a = RegionMix::builder(1)
            .region(Region::sequential_loop(0, 4096, 32), 1.0)
            .build()
            .unwrap();
        let b = RegionMix::builder(2)
            .region(Region::sequential_loop(0x1000_0000, 4096, 32), 1.0)
            .build()
            .unwrap();
        let mut g = PhasedMem::new(vec![(a, 3), (b, 3)]).unwrap();
        let refs = g.take_refs(12);
        assert!(refs[0..3].iter().all(|r| r.addr < 0x1000_0000));
        assert!(refs[3..6].iter().all(|r| r.addr >= 0x1000_0000));
        assert!(refs[6..9].iter().all(|r| r.addr < 0x1000_0000));
        // Phase A resumes its sweep where it paused.
        assert_eq!(refs[6].addr, 96);
    }

    #[test]
    fn phased_mem_validation() {
        assert!(PhasedMem::new(vec![]).is_err());
        let a = RegionMix::builder(1)
            .region(Region::random(0, 64), 1.0)
            .build()
            .unwrap();
        assert!(PhasedMem::new(vec![(a, 0)]).is_err());
    }
}
