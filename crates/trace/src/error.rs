//! Error type for trace-generator construction.

use std::error::Error;
use std::fmt;

/// Errors produced when building a trace generator from invalid parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// A generator was built with no regions / segments to draw from.
    Empty {
        /// What kind of generator was empty.
        what: &'static str,
    },
    /// A weight, probability or size parameter was out of range.
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        what: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty { what } => write!(f, "cannot build an empty {what}"),
            TraceError::InvalidParameter { what } => write!(f, "invalid generator parameter: {what}"),
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!TraceError::Empty { what: "region mix" }.to_string().is_empty());
        assert!(!TraceError::InvalidParameter { what: "negative weight" }.to_string().is_empty());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
