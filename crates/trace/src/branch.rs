//! Synthetic conditional-branch outcome streams.
//!
//! The paper names branch predictor tables as prime complexity-adaptive
//! candidates but evaluates only caches and queues; the branch-predictor
//! study in this reproduction (see `cap-ooo::bpred`) is the paper's
//! future-work extension. These generators provide its inputs: streams
//! of `(pc, taken)` events from a weighted population of static branches,
//! each with one of the classic behaviours:
//!
//! * [`BranchBehavior::Biased`] — taken with a fixed probability
//!   (data-dependent branches; the hard-to-predict tail);
//! * [`BranchBehavior::Loop`] — `n-1` taken iterations then one
//!   not-taken exit, repeating (backward loop branches; trivially
//!   predictable by any counter scheme);
//! * [`BranchBehavior::Correlated`] — outcome is a parity function of
//!   the recent *global* outcome history (if/else chains whose tests
//!   share operands; predictable only when the predictor's history and
//!   table are large enough to separate the contexts).
//!
//! The mix of behaviours controls how much a bigger predictor table
//! helps, which is exactly the knob the adaptive study needs.

use crate::error::TraceError;
use crate::rng::TraceRng;

/// One dynamic conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchEvent {
    /// The static branch's address.
    pub pc: u64,
    /// The resolved direction.
    pub taken: bool,
}

/// An infinite stream of branch outcomes.
pub trait BranchStream {
    /// Produces the next branch event.
    fn next_branch(&mut self) -> BranchEvent;

    /// Collects the next `n` events (convenience for tests).
    fn take_branches(&mut self, n: usize) -> Vec<BranchEvent>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_branch()).collect()
    }
}

impl<S: BranchStream + ?Sized> BranchStream for &mut S {
    fn next_branch(&mut self) -> BranchEvent {
        (**self).next_branch()
    }
}

/// The behaviour of one static branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BranchBehavior {
    /// Taken with probability `p` independently each time.
    Biased(f64),
    /// `n-1` taken, then one not taken, repeating.
    Loop(u32),
    /// Taken iff the parity of the last `k` *global* outcomes is even.
    Correlated(u32),
}

impl BranchBehavior {
    fn validate(&self) -> Result<(), TraceError> {
        match self {
            BranchBehavior::Biased(p) if !(0.0..=1.0).contains(p) => {
                Err(TraceError::InvalidParameter { what: "branch bias must be in [0,1]" })
            }
            BranchBehavior::Loop(n) if *n < 2 => {
                Err(TraceError::InvalidParameter { what: "loop trip count must be at least 2" })
            }
            BranchBehavior::Correlated(k) if *k == 0 || *k > 16 => {
                Err(TraceError::InvalidParameter { what: "correlation depth must be 1-16" })
            }
            _ => Ok(()),
        }
    }
}

#[derive(Debug, Clone)]
struct StaticBranch {
    pc: u64,
    behavior: BranchBehavior,
    /// Loop position.
    phase: u32,
}

/// A weighted population of static branches producing a global outcome
/// stream.
///
/// # Example
///
/// ```
/// use cap_trace::branch::{BranchBehavior, BranchStream, SyntheticBranches};
///
/// let mut gen = SyntheticBranches::builder(7)
///     .branch(BranchBehavior::Loop(10), 3.0)
///     .branch(BranchBehavior::Biased(0.5), 1.0)
///     .build()?;
/// let e = gen.next_branch();
/// assert!(e.pc > 0);
/// # Ok::<(), cap_trace::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticBranches {
    branches: Vec<StaticBranch>,
    weights: Vec<f64>,
    rng: TraceRng,
    /// Global history of recent outcomes (bit 0 = most recent).
    global_history: u64,
}

impl SyntheticBranches {
    /// Starts building a population; `seed` makes the stream
    /// reproducible.
    pub fn builder(seed: u64) -> SyntheticBranchesBuilder {
        SyntheticBranchesBuilder { behaviors: Vec::new(), seed }
    }

    /// The number of static branches.
    pub fn num_branches(&self) -> usize {
        self.branches.len()
    }
}

impl BranchStream for SyntheticBranches {
    fn next_branch(&mut self) -> BranchEvent {
        let i = if self.branches.len() == 1 { 0 } else { self.rng.weighted(&self.weights) };
        let b = &mut self.branches[i];
        let taken = match b.behavior {
            BranchBehavior::Biased(p) => self.rng.chance(p),
            BranchBehavior::Loop(n) => {
                b.phase = (b.phase + 1) % n;
                b.phase != 0
            }
            BranchBehavior::Correlated(k) => {
                let mask = (1u64 << k) - 1;
                (self.global_history & mask).count_ones().is_multiple_of(2)
            }
        };
        self.global_history = (self.global_history << 1) | u64::from(taken);
        BranchEvent { pc: b.pc, taken }
    }
}

/// Builder for [`SyntheticBranches`].
#[derive(Debug, Clone)]
pub struct SyntheticBranchesBuilder {
    behaviors: Vec<(BranchBehavior, f64)>,
    seed: u64,
}

impl SyntheticBranchesBuilder {
    /// Adds a static branch with a relative execution weight.
    pub fn branch(mut self, behavior: BranchBehavior, weight: f64) -> Self {
        self.behaviors.push((behavior, weight));
        self
    }

    /// Adds `count` copies of a behaviour, each a distinct static branch
    /// sharing one total weight (models a population of similar
    /// branches spread across the predictor's table).
    pub fn branch_group(mut self, behavior: BranchBehavior, count: usize, total_weight: f64) -> Self {
        for _ in 0..count {
            self.behaviors.push((behavior, total_weight / count.max(1) as f64));
        }
        self
    }

    /// Builds the population.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] with no branches, or
    /// [`TraceError::InvalidParameter`] for invalid behaviours/weights.
    pub fn build(self) -> Result<SyntheticBranches, TraceError> {
        if self.behaviors.is_empty() {
            return Err(TraceError::Empty { what: "branch population" });
        }
        for (b, w) in &self.behaviors {
            b.validate()?;
            if !w.is_finite() || *w <= 0.0 {
                return Err(TraceError::InvalidParameter { what: "branch weight must be positive and finite" });
            }
        }
        let mut rng = TraceRng::seeded(self.seed);
        let branches = self
            .behaviors
            .iter()
            .enumerate()
            .map(|(i, (behavior, _))| StaticBranch {
                // Spread PCs so different branches index different table
                // slots (4-byte instruction granularity, pseudo-random
                // placement).
                pc: 0x40_0000 + (i as u64) * 4 + (rng.below(1 << 16) << 6),
                behavior: *behavior,
                phase: 0,
            })
            .collect();
        let weights = self.behaviors.iter().map(|(_, w)| *w).collect();
        Ok(SyntheticBranches { branches, weights, rng, global_history: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_branch_pattern() {
        let mut g = SyntheticBranches::builder(1)
            .branch(BranchBehavior::Loop(4), 1.0)
            .build()
            .unwrap();
        let taken: Vec<bool> = g.take_branches(8).iter().map(|e| e.taken).collect();
        assert_eq!(taken, vec![true, true, true, false, true, true, true, false]);
    }

    #[test]
    fn biased_branch_frequency() {
        let mut g = SyntheticBranches::builder(2)
            .branch(BranchBehavior::Biased(0.8), 1.0)
            .build()
            .unwrap();
        let taken = g.take_branches(20_000).iter().filter(|e| e.taken).count();
        let frac = taken as f64 / 20_000.0;
        assert!((frac - 0.8).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn correlated_branch_is_deterministic_in_history() {
        // With only the correlated branch in the population, its own
        // outcomes feed the global history: the sequence is a fixed
        // orbit, perfectly predictable given enough history.
        let mut g = SyntheticBranches::builder(3)
            .branch(BranchBehavior::Correlated(3), 1.0)
            .build()
            .unwrap();
        let a: Vec<bool> = g.take_branches(64).iter().map(|e| e.taken).collect();
        let mut g2 = SyntheticBranches::builder(99)
            .branch(BranchBehavior::Correlated(3), 1.0)
            .build()
            .unwrap();
        let b: Vec<bool> = g2.take_branches(64).iter().map(|e| e.taken).collect();
        assert_eq!(a, b, "correlated outcomes do not depend on the seed");
    }

    #[test]
    fn distinct_pcs_per_static_branch() {
        let g = SyntheticBranches::builder(4)
            .branch_group(BranchBehavior::Biased(0.6), 50, 1.0)
            .build()
            .unwrap();
        assert_eq!(g.num_branches(), 50);
        let mut g = g;
        let pcs: std::collections::HashSet<u64> =
            g.take_branches(5000).iter().map(|e| e.pc).collect();
        assert!(pcs.len() >= 40, "most static branches appear: {}", pcs.len());
    }

    #[test]
    fn deterministic_for_seed() {
        let build = || {
            SyntheticBranches::builder(11)
                .branch(BranchBehavior::Loop(7), 2.0)
                .branch(BranchBehavior::Biased(0.3), 1.0)
                .branch(BranchBehavior::Correlated(4), 1.0)
                .build()
                .unwrap()
        };
        assert_eq!(build().take_branches(2000), build().take_branches(2000));
    }

    #[test]
    fn validation() {
        assert!(SyntheticBranches::builder(0).build().is_err());
        assert!(SyntheticBranches::builder(0)
            .branch(BranchBehavior::Biased(1.5), 1.0)
            .build()
            .is_err());
        assert!(SyntheticBranches::builder(0)
            .branch(BranchBehavior::Loop(1), 1.0)
            .build()
            .is_err());
        assert!(SyntheticBranches::builder(0)
            .branch(BranchBehavior::Correlated(0), 1.0)
            .build()
            .is_err());
        assert!(SyntheticBranches::builder(0)
            .branch(BranchBehavior::Biased(0.5), 0.0)
            .build()
            .is_err());
    }
}
