//! Deterministic synthetic trace generation for the CAP evaluation.
//!
//! The original paper drives its cache simulator with ATOM-captured address
//! traces and its out-of-order simulator with SimpleScalar running SPEC95 /
//! CMU / NAS binaries. Neither the binaries nor the traces are available,
//! so this crate provides *synthetic, deterministic, parameterized*
//! generators whose outputs are calibrated (in `cap-workloads`) to match
//! the published per-application behaviour:
//!
//! * [`mem`] — memory-reference streams built from weighted **regions**
//!   (sequential loops, strided sweeps, uniform-random heaps, pointer
//!   chases). Region sizes and weights control the miss-ratio-vs-cache-size
//!   curve.
//! * [`inst`] — dependency-annotated instruction streams built from
//!   **segments** (a serial chain followed by an independent burst, with a
//!   tunable probability of cross-segment serialization). Segment length
//!   sets the window size at which ILP saturates; the serialization
//!   probability sets the IPC asymptote.
//! * [`phase`] — schedules that switch generator parameters over time, for
//!   the paper's Section 6 intra-application diversity experiments
//!   (Figures 12–13).
//! * [`stack`] — an LRU stack-distance profiler used to validate the
//!   memory generators against their calibration targets.
//! * [`tape`] — a lazily recorded instruction tape so one synthesized
//!   stream can drive many simulations (the window multisweep).
//! * [`rng`] — a small deterministic RNG wrapper so every trace is exactly
//!   reproducible from a `u64` seed.
//!
//! All generators implement the [`AddressStream`] or [`InstStream`] traits
//! and are infinite: callers decide how many events to consume.
//!
//! # Example
//!
//! ```
//! use cap_trace::mem::{Region, RegionMix};
//! use cap_trace::AddressStream;
//!
//! let mut gen = RegionMix::builder(42)
//!     .region(Region::sequential_loop(0x1000_0000, 64 * 1024, 32), 3.0)
//!     .region(Region::random(0x2000_0000, 1024 * 1024), 1.0)
//!     .build()?;
//! let first = gen.next_ref();
//! assert!(first.addr >= 0x1000_0000);
//! # Ok::<(), cap_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod error;
pub mod inst;
pub mod mem;
pub mod phase;
pub mod rng;
pub mod stack;
pub mod tape;

pub use error::TraceError;
pub use inst::{Inst, InstStream};
pub use mem::{AccessKind, AddressStream, MemRef};
pub use rng::TraceRng;
