//! Synthetic dependency-annotated instruction streams.
//!
//! With the paper's idealizations for the instruction-queue study (perfect
//! branch prediction, perfect caches, plentiful functional units), the IPC
//! of an out-of-order core is a function *only* of the stream's dependence
//! structure versus the window size. This module synthesizes that
//! structure from a two-knob **segment model**:
//!
//! A program is a sequence of segments, each a **serial chain** of
//! [`IlpParams::chain_len`] instructions (each depending on its
//! predecessor, with latency [`IlpParams::chain_latency`]) followed by a
//! **burst** of [`IlpParams::burst_len`] instructions organized into
//! serial sub-chains of [`IlpParams::burst_chain_len`]. With probability
//! [`IlpParams::cross_dep_prob`] a chain's head depends on the previous
//! chain's tail, serializing consecutive segments (set to 1.0 this forms a
//! loop-carried *backbone* — each segment is one loop iteration).
//!
//! * The **burst sub-chain length** sets the *window scale*: a window of
//!   `W` entries holds about `W / burst_chain_len` concurrently
//!   executable sub-chains, so IPC rises roughly as
//!   `min(width, W / (burst_chain_len · burst_latency))` — the knee lands
//!   near `W* = width · burst_chain_len · burst_latency`.
//! * The **chain share** (`chain_len · chain_latency` versus segment
//!   size) sets the *IPC asymptote*: the backbone recurrence is the part
//!   no window can parallelize.
//!
//! These knobs let `cap-workloads` place each application's
//! TPI-versus-window minimum where the paper's Figure 10 places it.

use crate::error::TraceError;
use crate::rng::TraceRng;

/// One dynamic instruction with its data dependences.
///
/// Dependences are *absolute* producer indices in the dynamic stream
/// (instruction 0 is the first produced). A dependence on an instruction
/// that has already committed is satisfied immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// This instruction's index in the dynamic stream.
    pub seq: u64,
    /// First source operand's producer, if any.
    pub dep1: Option<u64>,
    /// Second source operand's producer, if any.
    pub dep2: Option<u64>,
    /// Execution latency in cycles (at least 1).
    pub latency: u32,
}

impl Inst {
    /// An instruction with no dependences and unit latency.
    pub fn independent(seq: u64) -> Self {
        Inst { seq, dep1: None, dep2: None, latency: 1 }
    }

    /// Returns the producer indices as an iterator (0, 1 or 2 items).
    pub fn deps(&self) -> impl Iterator<Item = u64> {
        self.dep1.into_iter().chain(self.dep2)
    }
}

/// An infinite stream of instructions.
pub trait InstStream {
    /// Produces the next instruction.
    fn next_inst(&mut self) -> Inst;

    /// Collects the next `n` instructions (convenience for tests).
    fn take_insts(&mut self, n: usize) -> Vec<Inst>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_inst()).collect()
    }
}

impl<S: InstStream + ?Sized> InstStream for &mut S {
    fn next_inst(&mut self) -> Inst {
        (**self).next_inst()
    }
}

/// Parameters of the segment ILP model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlpParams {
    /// Serial-chain length per segment (instructions).
    pub chain_len: u64,
    /// Independent-burst length per segment (instructions).
    pub burst_len: u64,
    /// Latency of chain instructions, in cycles.
    pub chain_latency: u32,
    /// Latency of burst instructions, in cycles.
    pub burst_latency: u32,
    /// Probability that a chain head depends on the previous chain's tail.
    pub cross_dep_prob: f64,
    /// Burst sub-chain length: burst instructions form serial sub-chains
    /// of this many instructions (1 = fully independent burst). This is
    /// the knob that makes IPC *window-sensitive*: a window of `W` entries
    /// holds about `W / burst_chain_len` concurrently executable
    /// sub-chains, so burst throughput is `min(width, W / (len · lat))`.
    pub burst_chain_len: u64,
    /// Probability that a burst sub-chain head carries an extra far-back
    /// dependence (realism noise; usually satisfied by commit).
    pub far_dep_prob: f64,
    /// Multiplicative jitter applied to segment lengths (0 = none).
    pub jitter: f64,
}

impl IlpParams {
    /// A balanced default: ILP saturating around a 64-entry window with an
    /// asymptote near 5 IPC — the behaviour of "most applications" in the
    /// paper's Figure 10.
    pub fn balanced() -> Self {
        IlpParams {
            chain_len: 4,
            burst_len: 56,
            chain_latency: 2,
            burst_latency: 1,
            cross_dep_prob: 1.0,
            burst_chain_len: 8,
            far_dep_prob: 0.05,
            jitter: 0.25,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidParameter`] when a length or latency is
    /// zero, or a probability / jitter is outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.chain_len == 0 || self.burst_len == 0 {
            return Err(TraceError::InvalidParameter { what: "segment lengths must be positive" });
        }
        if self.chain_latency == 0 || self.burst_latency == 0 {
            return Err(TraceError::InvalidParameter { what: "latencies must be at least 1 cycle" });
        }
        if self.burst_chain_len == 0 {
            return Err(TraceError::InvalidParameter { what: "burst sub-chain length must be at least 1" });
        }
        for p in [self.cross_dep_prob, self.far_dep_prob, self.jitter] {
            if !(0.0..=1.0).contains(&p) {
                return Err(TraceError::InvalidParameter {
                    what: "probabilities and jitter must be in [0,1]",
                });
            }
        }
        Ok(())
    }
}

impl Default for IlpParams {
    fn default() -> Self {
        Self::balanced()
    }
}

#[derive(Debug, Clone, Copy)]
enum SegState {
    Chain { left: u64, head: bool },
    Burst { left: u64, pos: u64 },
}

/// The segment-model instruction generator.
///
/// # Example
///
/// ```
/// use cap_trace::inst::{IlpParams, SegmentIlp};
/// use cap_trace::InstStream;
///
/// let mut gen = SegmentIlp::new(IlpParams::balanced(), 7)?;
/// let i0 = gen.next_inst();
/// let i1 = gen.next_inst();
/// assert_eq!(i0.seq, 0);
/// // The second chain instruction depends on the first.
/// assert_eq!(i1.dep1, Some(0));
/// # Ok::<(), cap_trace::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SegmentIlp {
    params: IlpParams,
    rng: TraceRng,
    idx: u64,
    state: SegState,
    last_chain_tail: Option<u64>,
}

impl SegmentIlp {
    /// Creates a generator with the given parameters and seed.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters fail [`IlpParams::validate`].
    pub fn new(params: IlpParams, seed: u64) -> Result<Self, TraceError> {
        params.validate()?;
        let mut rng = TraceRng::seeded(seed);
        let first = rng.jitter(params.chain_len, params.jitter);
        Ok(SegmentIlp {
            params,
            rng,
            idx: 0,
            state: SegState::Chain { left: first, head: true },
            last_chain_tail: None,
        })
    }

    /// Replaces the parameters mid-stream (used by phase schedules). The
    /// instruction index keeps counting; dependence chains are cut at the
    /// switch point.
    ///
    /// # Errors
    ///
    /// Returns an error if the new parameters fail [`IlpParams::validate`].
    pub fn set_params(&mut self, params: IlpParams) -> Result<(), TraceError> {
        params.validate()?;
        self.params = params;
        let first = self.rng.jitter(params.chain_len, params.jitter);
        self.state = SegState::Chain { left: first, head: true };
        self.last_chain_tail = None;
        Ok(())
    }

    /// The current parameters.
    pub fn params(&self) -> &IlpParams {
        &self.params
    }

    /// The index the next instruction will carry.
    pub fn position(&self) -> u64 {
        self.idx
    }
}

impl InstStream for SegmentIlp {
    fn next_inst(&mut self) -> Inst {
        let p = self.params;
        let seq = self.idx;
        let inst = match &mut self.state {
            SegState::Chain { left, head } => {
                let dep1 = if *head {
                    match self.last_chain_tail {
                        Some(t) if self.rng.chance(p.cross_dep_prob) => Some(t),
                        _ => None,
                    }
                } else {
                    Some(seq - 1)
                };
                *head = false;
                *left -= 1;
                if *left == 0 {
                    self.last_chain_tail = Some(seq);
                    let burst = self.rng.jitter(p.burst_len, p.jitter);
                    self.state = SegState::Burst { left: burst, pos: 0 };
                }
                Inst { seq, dep1, dep2: None, latency: p.chain_latency }
            }
            SegState::Burst { left, pos } => {
                let dep1 = if *pos % p.burst_chain_len != 0 {
                    // Within a burst sub-chain: serial dependence.
                    Some(seq - 1)
                } else if self.rng.chance(p.far_dep_prob) && seq > 0 {
                    // Sub-chain head with a far-back dependence, usually
                    // already committed.
                    let span = (8 * (p.chain_len + p.burst_len)).min(seq);
                    Some(seq - self.rng.between(1, span.max(1)))
                } else {
                    None
                };
                *pos += 1;
                *left -= 1;
                if *left == 0 {
                    let chain = self.rng.jitter(p.chain_len, p.jitter);
                    self.state = SegState::Chain { left: chain, head: true };
                }
                Inst { seq, dep1, dep2: None, latency: p.burst_latency }
            }
        };
        self.idx += 1;
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter(chain: u64, burst: u64, q: f64) -> IlpParams {
        IlpParams {
            chain_len: chain,
            burst_len: burst,
            chain_latency: 2,
            burst_latency: 1,
            cross_dep_prob: q,
            burst_chain_len: 1,
            far_dep_prob: 0.0,
            jitter: 0.0,
        }
    }

    #[test]
    fn deps_point_backwards() {
        let mut g = SegmentIlp::new(IlpParams::balanced(), 3).unwrap();
        for inst in g.take_insts(10_000) {
            for d in inst.deps() {
                assert!(d < inst.seq, "dep {d} not before {}", inst.seq);
            }
        }
    }

    #[test]
    fn seq_is_contiguous() {
        let mut g = SegmentIlp::new(IlpParams::balanced(), 3).unwrap();
        for (i, inst) in g.take_insts(1000).into_iter().enumerate() {
            assert_eq!(inst.seq, i as u64);
        }
    }

    #[test]
    fn chain_structure_without_jitter() {
        let mut g = SegmentIlp::new(no_jitter(3, 2, 0.0), 1).unwrap();
        let v = g.take_insts(10);
        // chain: 0,1,2 — burst: 3,4 — chain: 5,6,7 — burst: 8,9
        assert_eq!(v[0].dep1, None);
        assert_eq!(v[1].dep1, Some(0));
        assert_eq!(v[2].dep1, Some(1));
        assert_eq!(v[3].dep1, None);
        assert_eq!(v[4].dep1, None);
        assert_eq!(v[5].dep1, None, "independent chains when q = 0");
        assert_eq!(v[6].dep1, Some(5));
        assert_eq!(v[7].dep1, Some(6));
    }

    #[test]
    fn fully_serialized_chains_when_q_is_one() {
        let mut g = SegmentIlp::new(no_jitter(3, 2, 1.0), 1).unwrap();
        let v = g.take_insts(10);
        // Second chain's head (index 5) must depend on first chain's tail (2).
        assert_eq!(v[5].dep1, Some(2));
    }

    #[test]
    fn latencies_assigned_by_role() {
        let mut g = SegmentIlp::new(no_jitter(3, 2, 0.0), 1).unwrap();
        let v = g.take_insts(5);
        assert_eq!(v[0].latency, 2);
        assert_eq!(v[2].latency, 2);
        assert_eq!(v[3].latency, 1);
        assert_eq!(v[4].latency, 1);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = SegmentIlp::new(IlpParams::balanced(), 9).unwrap().take_insts(2000);
        let b = SegmentIlp::new(IlpParams::balanced(), 9).unwrap().take_insts(2000);
        assert_eq!(a, b);
    }

    #[test]
    fn set_params_cuts_chains() {
        let mut g = SegmentIlp::new(no_jitter(100, 2, 1.0), 1).unwrap();
        let _ = g.take_insts(10);
        g.set_params(no_jitter(4, 4, 0.0)).unwrap();
        let next = g.next_inst();
        assert_eq!(next.seq, 10);
        assert_eq!(next.dep1, None, "chain cut at phase switch");
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut p = IlpParams::balanced();
        p.chain_len = 0;
        assert!(SegmentIlp::new(p, 0).is_err());
        let mut p = IlpParams::balanced();
        p.burst_latency = 0;
        assert!(SegmentIlp::new(p, 0).is_err());
        let mut p = IlpParams::balanced();
        p.cross_dep_prob = 1.5;
        assert!(SegmentIlp::new(p, 0).is_err());
        let mut p = IlpParams::balanced();
        p.jitter = -0.1;
        assert!(SegmentIlp::new(p, 0).is_err());
    }

    #[test]
    fn independent_constructor() {
        let i = Inst::independent(5);
        assert_eq!(i.deps().count(), 0);
        assert_eq!(i.latency, 1);
    }

    #[test]
    fn far_deps_are_bounded() {
        let mut p = IlpParams::balanced();
        p.far_dep_prob = 1.0;
        let mut g = SegmentIlp::new(p, 5).unwrap();
        for inst in g.take_insts(5000) {
            if let Some(d) = inst.dep1 {
                assert!(inst.seq - d <= 8 * (p.chain_len + p.burst_len) + 1);
            }
        }
    }
}
