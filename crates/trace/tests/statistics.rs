//! Statistical property tests of the synthetic trace generators: the
//! distributions the simulators rely on must hold for arbitrary
//! parameters, not just the calibrated workload points.

use cap_trace::branch::{BranchBehavior, BranchStream, SyntheticBranches};
use cap_trace::inst::{IlpParams, InstStream, SegmentIlp};
use cap_trace::mem::{AccessKind, AddressStream, Region, RegionMix};
use cap_trace::phase::{Phase, PhasedIlp};
use cap_trace::stack::StackProfiler;
use proptest::prelude::*;

fn arb_ilp() -> impl Strategy<Value = IlpParams> {
    (1u64..20, 1u64..100, 1u32..4, 1u64..16, 0.0f64..1.0, 0.0f64..0.3, 0.0f64..0.5).prop_map(
        |(chain, burst, lat, sub, q, far, jitter)| IlpParams {
            chain_len: chain,
            burst_len: burst,
            chain_latency: lat,
            burst_latency: 1,
            cross_dep_prob: q,
            burst_chain_len: sub,
            far_dep_prob: far,
            jitter,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated instruction's dependences point strictly
    /// backwards, and seq numbers are dense from zero.
    #[test]
    fn inst_stream_well_formed(params in arb_ilp(), seed in 0u64..5000) {
        let mut g = SegmentIlp::new(params, seed).unwrap();
        for (i, inst) in g.take_insts(3000).into_iter().enumerate() {
            prop_assert_eq!(inst.seq, i as u64);
            prop_assert!(inst.latency >= 1);
            for d in inst.deps() {
                prop_assert!(d < inst.seq);
            }
        }
    }

    /// Chain instructions carry the chain latency; burst instructions
    /// the burst latency — for any parameters.
    #[test]
    fn latencies_partition(params in arb_ilp(), seed in 0u64..5000) {
        let mut g = SegmentIlp::new(params, seed).unwrap();
        for inst in g.take_insts(2000) {
            prop_assert!(inst.latency == params.chain_latency || inst.latency == params.burst_latency);
        }
    }

    /// Region mixtures stay inside their regions for any geometry.
    #[test]
    fn addresses_in_bounds(
        size_a in 64u64..1_000_000,
        size_b in 64u64..1_000_000,
        w in 0.1f64..10.0,
        seed in 0u64..5000,
    ) {
        let base_b = 1u64 << 40;
        let mut g = RegionMix::builder(seed)
            .region(Region::random(0, size_a), 1.0)
            .region(Region::sequential_loop(base_b, size_b, 32.min(size_b)), w)
            .build()
            .unwrap();
        for r in g.take_refs(2000) {
            let in_a = r.addr < size_a;
            let in_b = (base_b..base_b + size_b).contains(&r.addr);
            prop_assert!(in_a || in_b, "addr {:#x} escaped both regions", r.addr);
        }
    }

    /// The LRU stack profiler's miss ratio is monotone non-increasing in
    /// capacity for any mixture.
    #[test]
    fn stack_monotone(sizes in prop::collection::vec(1024u64..262_144, 1..4), seed in 0u64..5000) {
        let mut b = RegionMix::builder(seed);
        for (i, s) in sizes.iter().enumerate() {
            b = b.region(Region::random((i as u64) << 32, *s), 1.0 + i as f64);
        }
        let mut g = b.build().unwrap();
        let mut prof = StackProfiler::new(32);
        for _ in 0..20_000 {
            prof.observe(g.next_ref().addr);
        }
        let mut prev = 1.0f64;
        for cap in [256, 512, 1024, 2048, 4096, 8192] {
            let m = prof.miss_ratio_at_blocks(cap);
            prop_assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    /// A pure loop population's outcome stream is exactly (trip-1) taken
    /// then one not-taken, repeating.
    #[test]
    fn loop_trip_counts_exact(trip in 2u32..30, seed in 0u64..5000) {
        let mut g = SyntheticBranches::builder(seed)
            .branch(BranchBehavior::Loop(trip), 1.0)
            .build()
            .unwrap();
        let mut run = 0u32;
        for (i, e) in g.take_branches(2000).into_iter().enumerate() {
            if e.taken {
                run += 1;
                prop_assert!(run < trip, "run too long at {i}");
            } else {
                prop_assert_eq!(run, trip - 1, "early exit at {}", i);
                run = 0;
            }
        }
    }

    /// A mixed population only ever emits its static PCs.
    #[test]
    fn branch_pcs_from_population(trip in 2u32..30, bias in 0.0f64..1.0, seed in 0u64..5000) {
        let mut g = SyntheticBranches::builder(seed)
            .branch(BranchBehavior::Loop(trip), 1.0)
            .branch(BranchBehavior::Biased(bias), 1.0)
            .build()
            .unwrap();
        let pcs: std::collections::HashSet<u64> =
            g.take_branches(2000).iter().map(|e| e.pc).collect();
        prop_assert!(pcs.len() <= 2 && !pcs.is_empty());
    }

    /// Phase schedules deliver exactly their phase lengths, cyclically.
    /// `current_phase` reports the phase of the most recently produced
    /// instruction (the schedule advances lazily on the next pull).
    #[test]
    fn phases_cycle_exactly(len_a in 100u64..2000, len_b in 100u64..2000, seed in 0u64..5000) {
        let mut p = IlpParams::balanced();
        p.jitter = 0.0;
        let mut g = PhasedIlp::new(vec![Phase::new(p, len_a), Phase::new(p, len_b)], seed).unwrap();
        let period = len_a + len_b;
        for i in 0..(2 * period) {
            let _ = g.next_inst();
            let expected = if i % period < len_a { 0 } else { 1 };
            prop_assert_eq!(g.current_phase(), expected, "at instruction {}", i);
        }
    }
}

#[test]
fn write_fractions_converge() {
    let mut g = RegionMix::builder(3)
        .region(Region::random(0, 1 << 20).with_write_frac(0.3), 1.0)
        .build()
        .unwrap();
    let writes = g.take_refs(50_000).iter().filter(|r| r.kind == AccessKind::Write).count();
    let frac = writes as f64 / 50_000.0;
    assert!((frac - 0.3).abs() < 0.01, "got {frac}");
}

#[test]
fn segment_sizes_respect_jitter_bounds() {
    // With 25 % jitter, chain runs must stay within +-25 % (rounded) of
    // the nominal length.
    let params = IlpParams { jitter: 0.25, far_dep_prob: 0.0, ..IlpParams::balanced() };
    let mut g = SegmentIlp::new(params, 9).unwrap();
    let insts = g.take_insts(50_000);
    let mut chain_run = 0u64;
    for inst in &insts {
        if inst.latency == params.chain_latency {
            chain_run += 1;
        } else if chain_run > 0 {
            let lo = (params.chain_len as f64 * 0.75).floor() as u64;
            let hi = (params.chain_len as f64 * 1.25).ceil() as u64;
            assert!((lo..=hi).contains(&chain_run), "chain run {chain_run}");
            chain_run = 0;
        }
    }
}
