//! `cap-par` — the execution layer of the CAP reproduction.
//!
//! The paper's studies are embarrassingly parallel: every
//! (application × configuration) leg of the cache and queue sweeps is an
//! independent simulation. This crate supplies the pieces that let the
//! experiment drivers fan those legs out without giving up
//! reproducibility — and without trusting the machine to stay up:
//!
//! * [`pool`] — a small work-stealing thread pool built on scoped
//!   spawning. Results are collected **in submission order**, so a
//!   parallel run merges to exactly the bytes a serial run produces.
//! * [`cache`] — a versioned, content-addressed result cache persisted
//!   under `results/cache/`. Every entry embeds an FNV-1a checksum of
//!   its value; corrupt or truncated entries are quarantined and
//!   recomputed, never trusted.
//! * [`journal`] — the write-ahead leg journal behind
//!   `capsim sweep --resume`: each completed leg is committed atomically
//!   (temp file + rename), so a killed campaign resumes from its last
//!   leg boundary with byte-identical output.
//! * [`watchdog`] — a per-leg deadline (`CAP_LEG_TIMEOUT`) with bounded
//!   exponential-backoff retries; a stalled leg becomes a `TimedOut`
//!   error instead of a hung pool.
//! * [`shutdown`] — the process-wide graceful-drain flag set by the
//!   `capsim` signal handler and polled at leg boundaries.
//! * [`chaos`] — deterministic harness-level fault injection (leg
//!   panics, stalls, simulated kills) behind `capsim chaos`.
//! * [`singleflight`] — keyed in-flight deduplication for the campaign
//!   service: concurrent campaigns sharing a leg compute it once; the
//!   companion [`pool::Gate`] bounds total concurrent computation
//!   across independent executors to one worker budget.
//!
//! The pool and cache report into the [`cap_obs`] observability layer
//! when a recorder is attached: the pool emits per-batch execution/steal
//! counters, and [`cache::ResultCache::probe`] classifies every lookup
//! (hit / miss / invalid / corrupt / collision) for the
//! `result-cache-probe` trace events. With the default no-op recorder
//! neither path allocates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod journal;
pub mod pool;
pub mod shutdown;
pub mod singleflight;
pub mod watchdog;

pub use cache::{
    fnv64, CacheKey, CacheOutcome, DoctorReport, ResultCache, CACHE_FORMAT_VERSION, QUARANTINE_DIR,
};
pub use chaos::ChaosInjector;
pub use journal::{Journal, JournalHeader, CHAOS_KILL_EXIT, JOURNAL_FORMAT_VERSION};
pub use pool::{effective_jobs, jobs_from_env, BatchResult, Gate, GatePermit, Pool};
pub use shutdown::{drain_requested, request_drain, reset_drain};
pub use singleflight::SingleFlight;
pub use watchdog::{CancelToken, GuardedOutcome, WatchdogPolicy};
