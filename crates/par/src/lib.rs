//! `cap-par` — the execution layer of the CAP reproduction.
//!
//! The paper's studies are embarrassingly parallel: every
//! (application × configuration) leg of the cache and queue sweeps is an
//! independent simulation. This crate supplies the two pieces that let
//! the experiment drivers fan those legs out without giving up
//! reproducibility:
//!
//! * [`pool`] — a small work-stealing thread pool built on scoped
//!   spawning. Results are collected **in submission order**, so a
//!   parallel run merges to exactly the bytes a serial run produces.
//! * [`cache`] — a versioned, content-addressed result cache persisted
//!   under `results/cache/`. Sweep legs are pure functions of
//!   `(experiment kind, app, scale, seed, config range)`; replaying a
//!   cached result is byte-identical to recomputing it because the
//!   vendored JSON emitter writes `f64` in shortest round-trip form.
//!
//! Both pieces report into the [`cap_obs`] observability layer when a
//! recorder is attached: the pool emits per-batch execution/steal
//! counters, and [`cache::ResultCache::probe`] classifies every lookup
//! (hit / miss / invalid / collision) for the `result-cache-probe`
//! trace events. With the default no-op recorder neither path allocates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod pool;

pub use cache::{CacheKey, CacheOutcome, ResultCache, CACHE_FORMAT_VERSION};
pub use pool::{effective_jobs, jobs_from_env, Pool};
