//! Process-wide graceful-drain flag.
//!
//! Campaign runs can be long; a SIGINT/SIGTERM should not vaporise an
//! hour of completed legs. The signal handler in `capsim` (the only
//! place allowed to touch OS signals) simply calls [`request_drain`];
//! everything else — the pool's drain-aware batch loop, the experiment
//! drivers' salvage paths — polls [`drain_requested`] at leg boundaries
//! and winds down: in-flight legs finish, no new legs are dispatched,
//! completed work is flushed to the journal, and the run exits with a
//! salvage summary naming the resume command.
//!
//! The flag is a single process-global `AtomicBool` on purpose: a store
//! is async-signal-safe, and "this process is shutting down" is
//! inherently global state.

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

/// Requests a graceful drain: batch loops stop dispatching new legs.
/// Safe to call from a signal handler (it is a single atomic store).
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Whether a drain has been requested for this process.
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Clears the drain flag. Only tests (and the chaos harness between
/// scenarios) should need this; a real drain ends with process exit.
///
/// The flag is process-global, so exactly one test in this crate — the
/// pool's drain test — exercises it, to avoid cross-test races.
pub fn reset_drain() {
    DRAIN.store(false, Ordering::SeqCst);
}
