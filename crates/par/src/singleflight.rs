//! Single-flight deduplication of in-flight work, keyed by string.
//!
//! The campaign service (`capsim serve`) runs many campaigns
//! concurrently over one result cache. Two clients submitting
//! overlapping leg graphs (two `sweep all`s, or `figures` + `headline`)
//! must not compute the same leg twice: [`SingleFlight`] keys in-flight
//! work by the leg's canonical cache key. The first caller for a key
//! becomes the *leader* and runs the computation; every concurrent
//! caller for the same key becomes a *follower* that blocks until the
//! leader publishes, then shares a clone of the result. A slot exists
//! only while its work is in flight — once the leader finishes it is
//! retired, so later callers fall through to the result cache (which
//! the leader populated before retiring).
//!
//! A leader that panics mid-compute must not strand its followers: a
//! drop guard marks the slot *abandoned* and wakes everyone; each
//! follower retries, and exactly one becomes the new leader. Every lock
//! is taken poison-recovering (the data under it is valid at every
//! instruction boundary), matching the [`crate::pool`] convention.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// One in-flight computation's publication slot.
struct Slot<T> {
    state: Mutex<SlotState<T>>,
    published: Condvar,
}

enum SlotState<T> {
    /// The leader is still computing.
    Pending,
    /// The leader published; followers clone this.
    Done(T),
    /// The leader panicked before publishing; followers must retry.
    Abandoned,
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Marks the slot abandoned (and retires it) if the leader unwinds
/// before publishing, so followers wake up and elect a new leader
/// instead of blocking forever.
struct AbandonGuard<'a, T> {
    flight: &'a SingleFlight<T>,
    key: &'a str,
    slot: &'a Arc<Slot<T>>,
    armed: bool,
}

impl<T> Drop for AbandonGuard<'_, T> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        *lock(&self.slot.state) = SlotState::Abandoned;
        self.slot.published.notify_all();
        self.flight.retire(self.key, self.slot);
    }
}

/// Keyed single-flight execution: concurrent calls for the same key
/// compute once and share the result. See the module docs for the
/// leader/follower protocol.
pub struct SingleFlight<T> {
    inflight: Mutex<HashMap<String, Arc<Slot<T>>>>,
}

impl<T> std::fmt::Debug for SingleFlight<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleFlight").field("in_flight", &self.in_flight()).finish()
    }
}

impl<T> Default for SingleFlight<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SingleFlight<T> {
    /// An empty flight table.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight { inflight: Mutex::new(HashMap::new()) }
    }

    /// How many keys are currently in flight (leaders still computing).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        lock(&self.inflight).len()
    }

    /// Removes `key`'s table entry if it still points at `slot` (a
    /// retry may have installed a fresh slot under the same key).
    fn retire(&self, key: &str, slot: &Arc<Slot<T>>) {
        let mut map = lock(&self.inflight);
        if map.get(key).is_some_and(|current| Arc::ptr_eq(current, slot)) {
            map.remove(key);
        }
    }
}

impl<T: Clone> SingleFlight<T> {
    /// Runs `compute` under single-flight semantics for `key`.
    ///
    /// Returns `(value, deduped)`: `deduped` is `false` for the leader
    /// that actually ran `compute`, `true` for followers that shared
    /// the leader's published value. The computation runs outside the
    /// table lock, so distinct keys never serialize on each other.
    pub fn work(&self, key: &str, compute: impl FnOnce() -> T) -> (T, bool) {
        let mut compute = Some(compute);
        loop {
            let (slot, is_leader) = {
                let mut map = lock(&self.inflight);
                match map.get(key) {
                    Some(slot) => (slot.clone(), false),
                    None => {
                        let slot = Arc::new(Slot {
                            state: Mutex::new(SlotState::Pending),
                            published: Condvar::new(),
                        });
                        map.insert(key.to_string(), slot.clone());
                        (slot, true)
                    }
                }
            };
            if is_leader {
                let mut guard = AbandonGuard { flight: self, key, slot: &slot, armed: true };
                let compute = compute.take().expect("a leader is elected at most once");
                let value = compute();
                *lock(&slot.state) = SlotState::Done(value.clone());
                slot.published.notify_all();
                guard.armed = false;
                self.retire(key, &slot);
                return (value, false);
            }
            let mut state = lock(&slot.state);
            loop {
                match &*state {
                    SlotState::Pending => {
                        state = slot
                            .published
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    SlotState::Done(value) => return (value.clone(), true),
                    // The leader unwound before publishing: drop the
                    // guard and re-enter; one retrier becomes leader.
                    SlotState::Abandoned => break,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn concurrent_same_key_computes_once_and_shares() {
        let flight = SingleFlight::new();
        let runs = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(8);
        let results: Vec<(u64, bool)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        flight.work("leg", || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Hold the slot open long enough for the
                            // other threads to become followers.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            42u64
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.iter().all(|(v, _)| *v == 42));
        let leaders = results.iter().filter(|(_, deduped)| !deduped).count();
        // Every run came from a leader; followers of the same slot dedup.
        assert_eq!(runs.load(Ordering::SeqCst), leaders);
        assert!(leaders >= 1);
        assert_eq!(flight.in_flight(), 0, "slots retire after completion");
    }

    #[test]
    fn distinct_keys_do_not_serialize() {
        let flight = SingleFlight::new();
        let (a, deduped_a) = flight.work("a", || 1);
        let (b, deduped_b) = flight.work("b", || 2);
        assert_eq!((a, b), (1, 2));
        assert!(!deduped_a && !deduped_b);
    }

    #[test]
    fn a_panicking_leader_does_not_strand_followers() {
        let flight = Arc::new(SingleFlight::new());
        let entered = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let flight = flight.clone();
            let entered = entered.clone();
            std::thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    flight.work("leg", || {
                        entered.wait();
                        // Give the follower time to block on the slot.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        panic!("leader died");
                        #[allow(unreachable_code)]
                        0u64
                    })
                }));
                assert!(result.is_err());
            })
        };
        entered.wait();
        // The follower arrives while the leader is mid-compute; after
        // the abandon it must elect itself and produce the value.
        let (value, _) = flight.work("leg", || 7u64);
        assert_eq!(value, 7);
        leader.join().unwrap();
        assert_eq!(flight.in_flight(), 0);
    }
}
