//! A versioned, content-addressed result cache for sweep memoization.
//!
//! Every sweep leg in the workspace is a pure function of
//! `(experiment kind, app, scale, seed, config range)` — a [`CacheKey`].
//! The cache persists each result as one JSON file under
//! `<root>/v<FORMAT>/<kind>/<fnv64(key)>.json`, containing the full
//! canonical key (hash collisions are detected by string comparison, not
//! assumed away) next to the serialized value.
//!
//! **Invalidation is versioned, twice over.** The directory layer is
//! [`CACHE_FORMAT_VERSION`] — bumped when the file layout changes, so a
//! new binary never misreads an old tree. The key itself carries the
//! caller's semantic version ([`CacheKey::version`], e.g.
//! `cap-core`'s `SWEEP_RESULTS_VERSION`) — bumped whenever simulator or
//! timing semantics change, so stale physics can never replay. Unknown,
//! corrupt, or mismatched entries are ignored and recomputed; the cache
//! can always be deleted wholesale (`rm -rf results/cache`).
//!
//! Replay fidelity: the vendored emitter writes `f64` in Rust's shortest
//! round-trippable form and the reader parses it back to identical bits,
//! so a cache-hit report is byte-for-byte equal to a cold run.

use serde::Serialize;
use serde_json::Value;
use std::path::{Path, PathBuf};

/// Bump when the on-disk layout (paths or envelope) changes.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// The identity of one memoizable experiment leg.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// Experiment kind, e.g. `"cache-sweep"` — becomes a subdirectory.
    pub kind: String,
    /// Application name.
    pub app: String,
    /// Experiment scale name (`smoke` / `default` / `full`).
    pub scale: String,
    /// The root seed of the run.
    pub seed: u64,
    /// A canonical description of the swept configuration range,
    /// e.g. `"L1 8..64KB x8"`.
    pub config_range: String,
    /// The caller's semantic version; bump to invalidate after any
    /// change to simulator or timing behaviour.
    pub version: u32,
    /// The configuration-management policy that produced the result,
    /// for legs whose value depends on one (managed runs). `None` for
    /// policy-independent legs (sweeps, fixed-configuration series) —
    /// and `None` leaves the canonical key exactly as it was before
    /// this field existed, so old cache entries stay valid.
    pub policy: Option<String>,
}

impl CacheKey {
    /// The canonical key string stored inside each cache file.
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "{}|{}|{}|seed={:#018x}|{}|v{}",
            self.kind, self.app, self.scale, self.seed, self.config_range, self.version
        );
        if let Some(policy) = &self.policy {
            s.push_str("|policy=");
            s.push_str(policy);
        }
        s
    }
}

/// FNV-1a, the classic dependency-free 64-bit content hash.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// What a [`ResultCache::probe`] found, for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// A valid entry with a matching canonical key.
    Hit,
    /// No entry on disk (or an unreadable file).
    Miss,
    /// An entry that exists but cannot be parsed or lacks its envelope.
    Invalid,
    /// An entry whose embedded canonical key belongs to a different leg
    /// (an FNV-64 hash collision or a stale envelope).
    Collision,
}

impl CacheOutcome {
    /// Stable lowercase tag used in trace events.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Invalid => "invalid",
            CacheOutcome::Collision => "collision",
        }
    }
}

/// A directory-backed result cache. Cheap to clone (it is only a path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `root` (conventionally `results/cache/`). The
    /// directory is created lazily on first store.
    pub fn at(root: impl Into<PathBuf>) -> Self {
        ResultCache { root: root.into() }
    }

    /// The cache selected by the environment: `None` when `CAP_NO_CACHE`
    /// is set, else the `CAP_CACHE_DIR` directory when set, else `None`.
    pub fn from_env() -> Option<Self> {
        if std::env::var_os("CAP_NO_CACHE").is_some() {
            return None;
        }
        std::env::var_os("CAP_CACHE_DIR").map(Self::at)
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, key: &CacheKey) -> PathBuf {
        self.root
            .join(format!("v{CACHE_FORMAT_VERSION}"))
            .join(&key.kind)
            .join(format!("{:016x}.json", fnv64(&key.canonical())))
    }

    /// Looks up a stored value. Returns `None` — never an error — on
    /// miss, unreadable file, parse failure, or key mismatch; the caller
    /// simply recomputes.
    pub fn lookup(&self, key: &CacheKey) -> Option<Value> {
        self.probe(key).0
    }

    /// Like [`ResultCache::lookup`], but also classifies what happened —
    /// the distinction between a cold miss, a corrupt entry and a hash
    /// collision feeds the `result-cache-probe` trace events.
    pub fn probe(&self, key: &CacheKey) -> (Option<Value>, CacheOutcome) {
        let Ok(text) = std::fs::read_to_string(self.path_for(key)) else {
            return (None, CacheOutcome::Miss);
        };
        let Ok(doc) = serde_json::from_str(&text) else {
            return (None, CacheOutcome::Invalid);
        };
        let doc: Value = doc;
        let Some(stored) = doc.get("key").and_then(Value::as_str) else {
            return (None, CacheOutcome::Invalid);
        };
        if stored != key.canonical() {
            return (None, CacheOutcome::Collision);
        }
        match doc.get("value").cloned() {
            Some(value) => (Some(value), CacheOutcome::Hit),
            None => (None, CacheOutcome::Invalid),
        }
    }

    /// Persists a value. Best-effort: an unwritable cache must not fail
    /// the experiment, so errors are reported as `false` and otherwise
    /// swallowed. The write goes through a temp file + rename so
    /// concurrent writers (CI matrix legs) never interleave bytes.
    pub fn store<T: Serialize>(&self, key: &CacheKey, value: &T) -> bool {
        let path = self.path_for(key);
        let Some(dir) = path.parent() else { return false };
        if std::fs::create_dir_all(dir).is_err() {
            return false;
        }
        let mut doc = String::from("{\"key\":");
        serde::write_json_string(&mut doc, &key.canonical());
        doc.push_str(",\"value\":");
        value.json_into(&mut doc);
        doc.push('}');
        let tmp = dir.join(format!(".tmp-{:016x}-{}", fnv64(&key.canonical()), std::process::id()));
        if std::fs::write(&tmp, &doc).is_err() {
            return false;
        }
        std::fs::rename(&tmp, &path).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cap-par-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key() -> CacheKey {
        CacheKey {
            kind: "queue-sweep".into(),
            app: "vortex".into(),
            scale: "smoke".into(),
            seed: 0x15CA_1998,
            config_range: "W 16..128 x8".into(),
            version: 1,
            policy: None,
        }
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let cache = ResultCache::at(tmp_root("roundtrip"));
        let values = vec![0.1f64, 1.0 / 3.0, -2.25];
        assert!(cache.store(&key(), &values));
        let got = cache.lookup(&key()).expect("hit");
        let xs = got.as_array().expect("array");
        for (v, x) in values.iter().zip(xs) {
            assert_eq!(x.as_f64().unwrap().to_bits(), v.to_bits());
        }
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn miss_on_different_key_fields() {
        let cache = ResultCache::at(tmp_root("miss"));
        assert!(cache.store(&key(), &vec![1u64]));
        for k in [
            CacheKey { seed: 99, ..key() },
            CacheKey { version: 2, ..key() },
            CacheKey { scale: "full".into(), ..key() },
            CacheKey { app: "gcc".into(), ..key() },
            CacheKey { config_range: "W 16..64 x4".into(), ..key() },
            CacheKey { policy: Some("hysteresis".into()), ..key() },
        ] {
            assert!(cache.lookup(&k).is_none(), "{}", k.canonical());
        }
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_file_is_a_miss() {
        let cache = ResultCache::at(tmp_root("corrupt"));
        assert!(cache.store(&key(), &vec![1u64]));
        let path = cache.path_for(&key());
        std::fs::write(&path, "{ not json").unwrap();
        assert!(cache.lookup(&key()).is_none());
        // And a mismatched embedded key (simulated collision) too.
        std::fs::write(&path, "{\"key\":\"someone-else\",\"value\":[1]}").unwrap();
        assert!(cache.lookup(&key()).is_none());
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn probe_classifies_hit_miss_invalid_and_collision() {
        let cache = ResultCache::at(tmp_root("probe"));
        assert_eq!(cache.probe(&key()).1, CacheOutcome::Miss);
        assert!(cache.store(&key(), &vec![1u64]));
        assert_eq!(cache.probe(&key()).1, CacheOutcome::Hit);
        let path = cache.path_for(&key());
        std::fs::write(&path, "{ not json").unwrap();
        assert_eq!(cache.probe(&key()).1, CacheOutcome::Invalid);
        std::fs::write(&path, "{\"key\":\"someone-else\",\"value\":[1]}").unwrap();
        assert_eq!(cache.probe(&key()).1, CacheOutcome::Collision);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn lookup_without_store_is_a_clean_miss() {
        let cache = ResultCache::at(tmp_root("cold"));
        assert!(cache.lookup(&key()).is_none());
    }

    #[test]
    fn canonical_key_mentions_every_field() {
        let c = key().canonical();
        for part in ["queue-sweep", "vortex", "smoke", "0x0000000015ca1998", "W 16..128 x8", "v1"] {
            assert!(c.contains(part), "{c} missing {part}");
        }
        // A policy-free key is byte-identical to the pre-policy format;
        // a policy-bearing key appends one suffix segment.
        assert!(!c.contains("policy="), "{c}");
        let p = CacheKey { policy: Some("confidence".into()), ..key() }.canonical();
        assert!(p.starts_with(&c) && p.ends_with("|policy=confidence"), "{p}");
    }
}
