//! A versioned, content-addressed result cache for sweep memoization.
//!
//! Every sweep leg in the workspace is a pure function of
//! `(experiment kind, app, scale, seed, config range)` — a [`CacheKey`].
//! The cache persists each result as one JSON file under
//! `<root>/v<FORMAT>/<kind>/<fnv64(key)>.json`, containing the full
//! canonical key (hash collisions are detected by string comparison, not
//! assumed away) and an FNV-1a checksum of the serialized value, next to
//! the value itself.
//!
//! **Invalidation is versioned, twice over.** The directory layer is
//! [`CACHE_FORMAT_VERSION`] — bumped when the file layout changes, so a
//! new binary never misreads an old tree. The key itself carries the
//! caller's semantic version ([`CacheKey::version`], e.g.
//! `cap-core`'s `SWEEP_RESULTS_VERSION`) — bumped whenever simulator or
//! timing semantics change, so stale physics can never replay.
//!
//! **Integrity is verified, never assumed.** Every lookup re-hashes the
//! entry's exact value text against the embedded checksum. A corrupt or
//! truncated entry is moved into `<root>/quarantine/` — preserved for
//! `capsim doctor` and post-mortems, never trusted, never a panic — and
//! the leg recomputes. The cache can always be deleted wholesale
//! (`rm -rf results/cache`).
//!
//! Replay fidelity: the vendored emitter writes `f64` in Rust's shortest
//! round-trippable form and the reader parses it back to identical bits,
//! so a cache-hit report is byte-for-byte equal to a cold run.

use serde::Serialize;
use serde_json::Value;
use std::path::{Path, PathBuf};

/// Bump when the on-disk layout (paths or envelope) changes.
/// v2 added the per-entry FNV-1a value checksum.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// The quarantine subdirectory for corrupt entries.
pub const QUARANTINE_DIR: &str = "quarantine";

/// The identity of one memoizable experiment leg.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// Experiment kind, e.g. `"cache-sweep"` — becomes a subdirectory.
    pub kind: String,
    /// Application name.
    pub app: String,
    /// Experiment scale name (`smoke` / `default` / `full`).
    pub scale: String,
    /// The root seed of the run.
    pub seed: u64,
    /// A canonical description of the swept configuration range,
    /// e.g. `"L1 8..64KB x8"`.
    pub config_range: String,
    /// The caller's semantic version; bump to invalidate after any
    /// change to simulator or timing behaviour.
    pub version: u32,
    /// The configuration-management policy that produced the result,
    /// for legs whose value depends on one (managed runs). `None` for
    /// policy-independent legs (sweeps, fixed-configuration series) —
    /// and `None` leaves the canonical key exactly as it was before
    /// this field existed, so old cache entries stay valid.
    pub policy: Option<String>,
}

impl CacheKey {
    /// The canonical key string stored inside each cache file.
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "{}|{}|{}|seed={:#018x}|{}|v{}",
            self.kind, self.app, self.scale, self.seed, self.config_range, self.version
        );
        if let Some(policy) = &self.policy {
            s.push_str("|policy=");
            s.push_str(policy);
        }
        s
    }
}

/// FNV-1a, the classic dependency-free 64-bit content hash. Used for
/// cache file names and for the integrity checksums embedded in cache
/// and journal entries.
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// What a [`ResultCache::probe`] found, for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// A valid, checksummed entry with a matching canonical key.
    Hit,
    /// No entry on disk (or an unreadable file).
    Miss,
    /// An entry that cannot be parsed or lacks its envelope — typically
    /// a truncated write. Quarantined.
    Invalid,
    /// An entry whose embedded checksum does not match its value text —
    /// bit rot or tampering. Quarantined.
    Corrupt,
    /// A structurally sound entry whose embedded canonical key belongs
    /// to a different leg (an FNV-64 hash collision). Left in place.
    Collision,
}

impl CacheOutcome {
    /// Stable lowercase tag used in trace events.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Invalid => "invalid",
            CacheOutcome::Corrupt => "corrupt",
            CacheOutcome::Collision => "collision",
        }
    }

    /// Whether this outcome sends the entry to `quarantine/`.
    #[must_use]
    pub fn quarantines(self) -> bool {
        matches!(self, CacheOutcome::Invalid | CacheOutcome::Corrupt)
    }
}

/// The serialized envelope: `{"key":K,"sum":"<fnv64 hex>","value":V}`.
fn envelope(key_canonical: &str, value_text: &str) -> String {
    let mut doc = String::from("{\"key\":");
    serde::write_json_string(&mut doc, key_canonical);
    doc.push_str(&format!(",\"sum\":\"{:016x}\",\"value\":", fnv64(value_text)));
    doc.push_str(value_text);
    doc.push('}');
    doc
}

/// Parses and integrity-checks one entry's text. `Ok((key, value))` only
/// when the envelope is structurally exact and the checksum matches;
/// otherwise the [`CacheOutcome`] classifying the damage.
fn verify_envelope(text: &str) -> Result<(String, Value), CacheOutcome> {
    let Ok(doc) = serde_json::from_str(text) else {
        return Err(CacheOutcome::Invalid);
    };
    let doc: Value = doc;
    let Some(stored) = doc.get("key").and_then(Value::as_str) else {
        return Err(CacheOutcome::Invalid);
    };
    let Some(sum) = doc.get("sum").and_then(Value::as_str) else {
        return Err(CacheOutcome::Invalid);
    };
    // Reconstruct the exact writer prefix so the checksum demonstrably
    // covers the value's bytes as stored, not a re-serialization.
    let mut prefix = String::from("{\"key\":");
    serde::write_json_string(&mut prefix, stored);
    prefix.push_str(&format!(",\"sum\":\"{sum}\",\"value\":"));
    let Some(value_text) = text.strip_prefix(prefix.as_str()).and_then(|t| t.strip_suffix('}'))
    else {
        return Err(CacheOutcome::Invalid);
    };
    if format!("{:016x}", fnv64(value_text)) != sum {
        return Err(CacheOutcome::Corrupt);
    }
    match doc.get("value") {
        Some(value) => Ok((stored.to_string(), value.clone())),
        None => Err(CacheOutcome::Invalid),
    }
}

/// What [`ResultCache::doctor`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DoctorReport {
    /// Entry files examined under the current format tree.
    pub scanned: usize,
    /// Entries that passed envelope and checksum verification.
    pub valid: usize,
    /// Corrupt/truncated entries moved to `quarantine/` by this scan.
    pub quarantined: usize,
    /// Verified entries filed under a name that does not match their
    /// embedded key's hash (left in place; they probe as collisions).
    pub misplaced: usize,
    /// Total files now resident in `quarantine/` (including earlier runs').
    pub quarantine_total: usize,
}

/// A directory-backed result cache. Cheap to clone (it is only a path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `root` (conventionally `results/cache/`). The
    /// directory is created lazily on first store.
    pub fn at(root: impl Into<PathBuf>) -> Self {
        ResultCache { root: root.into() }
    }

    /// The cache selected by the environment: `None` when `CAP_NO_CACHE`
    /// is set, else the `CAP_CACHE_DIR` directory when set, else `None`.
    pub fn from_env() -> Option<Self> {
        if std::env::var_os("CAP_NO_CACHE").is_some() {
            return None;
        }
        std::env::var_os("CAP_CACHE_DIR").map(Self::at)
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Proves the cache directory can actually be written: creates it if
    /// missing and round-trips a probe file. Campaigns call this up
    /// front so a bad `CAP_CACHE_DIR` fails immediately with a clear
    /// message instead of surfacing as silent store failures mid-sweep.
    ///
    /// # Errors
    /// A human-readable message naming the directory and the OS error.
    pub fn ensure_writable(&self) -> Result<(), String> {
        std::fs::create_dir_all(&self.root)
            .map_err(|e| format!("cannot create cache directory {}: {e}", self.root.display()))?;
        let probe = self.root.join(format!(".probe-{}", std::process::id()));
        std::fs::write(&probe, b"cap cache probe")
            .map_err(|e| format!("cache directory {} is not writable: {e}", self.root.display()))?;
        let _ = std::fs::remove_file(&probe);
        Ok(())
    }

    fn path_for(&self, key: &CacheKey) -> PathBuf {
        self.root
            .join(format!("v{CACHE_FORMAT_VERSION}"))
            .join(&key.kind)
            .join(format!("{:016x}.json", fnv64(&key.canonical())))
    }

    /// Moves a damaged entry into `quarantine/`, naming it after its
    /// kind directory so provenance survives the move. Best-effort: a
    /// failed move must not fail the experiment (the entry is already
    /// classified as untrusted and will be overwritten by the recompute).
    fn quarantine(&self, path: &Path) {
        let dir = self.root.join(QUARANTINE_DIR);
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let kind = path
            .parent()
            .and_then(|p| p.file_name())
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let file = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        // Keep every damaged generation: suffix instead of overwriting an
        // earlier quarantined copy of the same entry.
        let mut dest = dir.join(format!("{kind}-{file}"));
        let mut generation = 1u32;
        while dest.exists() && generation < 1000 {
            dest = dir.join(format!("{kind}-{file}.{generation}"));
            generation += 1;
        }
        let _ = std::fs::rename(path, dest);
    }

    /// Looks up a stored value. Returns `None` — never an error — on
    /// miss, unreadable file, corrupt entry, or key mismatch; the caller
    /// simply recomputes.
    pub fn lookup(&self, key: &CacheKey) -> Option<Value> {
        self.probe(key).0
    }

    /// Like [`ResultCache::lookup`], but also classifies what happened —
    /// the distinction between a cold miss, a corrupt entry and a hash
    /// collision feeds the `result-cache-probe` trace events. Corrupt
    /// and invalid entries are moved to `quarantine/` as a side effect.
    pub fn probe(&self, key: &CacheKey) -> (Option<Value>, CacheOutcome) {
        let path = self.path_for(key);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return (None, CacheOutcome::Miss);
        };
        match verify_envelope(&text) {
            Ok((stored, _)) if stored != key.canonical() => (None, CacheOutcome::Collision),
            Ok((_, value)) => (Some(value), CacheOutcome::Hit),
            Err(outcome) => {
                if outcome.quarantines() {
                    self.quarantine(&path);
                }
                (None, outcome)
            }
        }
    }

    /// Persists a value. Best-effort: an unwritable cache must not fail
    /// the experiment, so errors are reported as `false` and otherwise
    /// swallowed. The write goes through a temp file + rename so
    /// concurrent writers (CI matrix legs, or two campaign-service
    /// requests racing the same leg) never interleave bytes. The temp
    /// name carries the pid *and* a process-global counter: two threads
    /// of one process storing the same key must not clobber each other's
    /// half-written temp file before its rename lands.
    pub fn store<T: Serialize>(&self, key: &CacheKey, value: &T) -> bool {
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = self.path_for(key);
        let Some(dir) = path.parent() else { return false };
        if std::fs::create_dir_all(dir).is_err() {
            return false;
        }
        let mut value_text = String::new();
        value.json_into(&mut value_text);
        let doc = envelope(&key.canonical(), &value_text);
        let tmp = dir.join(format!(
            ".tmp-{:016x}-{}-{}",
            fnv64(&key.canonical()),
            std::process::id(),
            TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, &doc).is_err() {
            return false;
        }
        std::fs::rename(&tmp, &path).is_ok()
    }

    /// Scans the current-format tree, quarantining every entry that
    /// fails envelope or checksum verification — the offline repair pass
    /// behind `capsim doctor`.
    ///
    /// # Errors
    /// Only when the cache root itself cannot be read; a missing root is
    /// reported, not invented.
    pub fn doctor(&self) -> Result<DoctorReport, String> {
        if !self.root.is_dir() {
            return Err(format!("cache directory {} does not exist", self.root.display()));
        }
        let mut report = DoctorReport::default();
        let tree = self.root.join(format!("v{CACHE_FORMAT_VERSION}"));
        let kinds = match std::fs::read_dir(&tree) {
            Ok(k) => k,
            // An empty or pre-first-store cache is healthy, not an error.
            Err(_) => return Ok(self.with_quarantine_total(report)),
        };
        let mut files: Vec<PathBuf> = Vec::new();
        for kind in kinds.flatten() {
            if let Ok(entries) = std::fs::read_dir(kind.path()) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.extension().is_some_and(|e| e == "json") {
                        files.push(path);
                    }
                }
            }
        }
        files.sort();
        for path in files {
            report.scanned += 1;
            let verdict = std::fs::read_to_string(&path)
                .map_err(|_| CacheOutcome::Invalid)
                .and_then(|text| verify_envelope(&text).map(|(key, _)| key));
            match verdict {
                Ok(stored_key) => {
                    report.valid += 1;
                    let expected = format!("{:016x}.json", fnv64(&stored_key));
                    if path.file_name().is_none_or(|n| n.to_string_lossy() != expected) {
                        report.misplaced += 1;
                    }
                }
                Err(_) => {
                    self.quarantine(&path);
                    report.quarantined += 1;
                }
            }
        }
        Ok(self.with_quarantine_total(report))
    }

    fn with_quarantine_total(&self, mut report: DoctorReport) -> DoctorReport {
        report.quarantine_total = std::fs::read_dir(self.root.join(QUARANTINE_DIR))
            .map(|d| d.flatten().count())
            .unwrap_or(0);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cap-par-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key() -> CacheKey {
        CacheKey {
            kind: "queue-sweep".into(),
            app: "vortex".into(),
            scale: "smoke".into(),
            seed: 0x15CA_1998,
            config_range: "W 16..128 x8".into(),
            version: 1,
            policy: None,
        }
    }

    fn quarantine_count(cache: &ResultCache) -> usize {
        std::fs::read_dir(cache.root().join(QUARANTINE_DIR))
            .map(|d| d.flatten().count())
            .unwrap_or(0)
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let cache = ResultCache::at(tmp_root("roundtrip"));
        let values = vec![0.1f64, 1.0 / 3.0, -2.25];
        assert!(cache.store(&key(), &values));
        let got = cache.lookup(&key()).expect("hit");
        let xs = got.as_array().expect("array");
        for (v, x) in values.iter().zip(xs) {
            assert_eq!(x.as_f64().unwrap().to_bits(), v.to_bits());
        }
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn miss_on_different_key_fields() {
        let cache = ResultCache::at(tmp_root("miss"));
        assert!(cache.store(&key(), &vec![1u64]));
        for k in [
            CacheKey { seed: 99, ..key() },
            CacheKey { version: 2, ..key() },
            CacheKey { scale: "full".into(), ..key() },
            CacheKey { app: "gcc".into(), ..key() },
            CacheKey { config_range: "W 16..64 x4".into(), ..key() },
            CacheKey { policy: Some("hysteresis".into()), ..key() },
        ] {
            assert!(cache.lookup(&k).is_none(), "{}", k.canonical());
        }
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_file_is_a_miss_and_is_quarantined() {
        let cache = ResultCache::at(tmp_root("corrupt"));
        assert!(cache.store(&key(), &vec![1u64]));
        let path = cache.path_for(&key());
        std::fs::write(&path, "{ not json").unwrap();
        assert!(cache.lookup(&key()).is_none());
        assert!(!path.exists(), "damaged entry is moved out of the tree");
        assert_eq!(quarantine_count(&cache), 1);
        // A flipped value byte under an intact envelope: checksum catches it.
        assert!(cache.store(&key(), &vec![1u64]));
        let text = std::fs::read_to_string(&path).unwrap().replace("\"value\":[1]", "\"value\":[9]");
        std::fs::write(&path, text).unwrap();
        assert!(cache.lookup(&key()).is_none(), "a tampered value is never trusted");
        assert_eq!(quarantine_count(&cache), 2);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn probe_classifies_hit_miss_invalid_corrupt_and_collision() {
        let cache = ResultCache::at(tmp_root("probe"));
        assert_eq!(cache.probe(&key()).1, CacheOutcome::Miss);
        assert!(cache.store(&key(), &vec![1u64]));
        assert_eq!(cache.probe(&key()).1, CacheOutcome::Hit);
        let path = cache.path_for(&key());

        std::fs::write(&path, "{ not json").unwrap();
        assert_eq!(cache.probe(&key()).1, CacheOutcome::Invalid);

        assert!(cache.store(&key(), &vec![1u64]));
        let tampered =
            std::fs::read_to_string(&path).unwrap().replace("\"value\":[1]", "\"value\":[2]");
        std::fs::write(&path, tampered).unwrap();
        assert_eq!(cache.probe(&key()).1, CacheOutcome::Corrupt);

        // A structurally sound envelope for a *different* leg: collision,
        // left in place (it is not damaged, just unluckily named).
        std::fs::write(&path, envelope("someone-else", "[1]")).unwrap();
        assert_eq!(cache.probe(&key()).1, CacheOutcome::Collision);
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn concurrent_same_key_stores_leave_a_verified_entry_and_no_debris() {
        let cache = ResultCache::at(tmp_root("concurrent-store"));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..50u64 {
                        // Every writer races the same key; each store must
                        // land atomically (its own temp file + rename).
                        assert!(cache.store(&key(), &vec![t, i]));
                    }
                });
            }
        });
        // Whichever rename won last, the surviving entry passes the full
        // envelope + checksum probe — no interleaved bytes.
        let (value, outcome) = cache.probe(&key());
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(value.expect("hit").as_array().map(<[Value]>::len), Some(2));
        // And no orphaned temp files remain in the kind directory.
        let kind_dir = cache.path_for(&key());
        let kind_dir = kind_dir.parent().unwrap();
        let leftovers: Vec<String> = std::fs::read_dir(kind_dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn lookup_without_store_is_a_clean_miss() {
        let cache = ResultCache::at(tmp_root("cold"));
        assert!(cache.lookup(&key()).is_none());
    }

    #[test]
    fn canonical_key_mentions_every_field() {
        let c = key().canonical();
        for part in ["queue-sweep", "vortex", "smoke", "0x0000000015ca1998", "W 16..128 x8", "v1"] {
            assert!(c.contains(part), "{c} missing {part}");
        }
        // A policy-free key is byte-identical to the pre-policy format;
        // a policy-bearing key appends one suffix segment.
        assert!(!c.contains("policy="), "{c}");
        let p = CacheKey { policy: Some("confidence".into()), ..key() }.canonical();
        assert!(p.starts_with(&c) && p.ends_with("|policy=confidence"), "{p}");
    }

    #[test]
    fn ensure_writable_creates_and_probes() {
        let root = tmp_root("writable");
        let cache = ResultCache::at(&root);
        cache.ensure_writable().expect("fresh temp dir is writable");
        assert!(root.is_dir());
        // A path that collides with a file cannot be a cache directory.
        let blocked = root.join("blocked");
        std::fs::write(&blocked, b"a file").unwrap();
        let err = ResultCache::at(&blocked).ensure_writable().expect_err("file blocks dir");
        assert!(err.contains(&blocked.display().to_string()), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn doctor_quarantines_damage_and_reports_counts() {
        let cache = ResultCache::at(tmp_root("doctor"));
        let keys: Vec<CacheKey> =
            (0..4).map(|i| CacheKey { app: format!("app{i}"), ..key() }).collect();
        for k in &keys {
            assert!(cache.store(k, &vec![k.seed]));
        }
        // Damage two entries: truncate one, flip a value byte in another.
        let p0 = cache.path_for(&keys[0]);
        let text = std::fs::read_to_string(&p0).unwrap();
        std::fs::write(&p0, &text[..text.len() / 2]).unwrap();
        let p1 = cache.path_for(&keys[1]);
        let tampered = std::fs::read_to_string(&p1)
            .unwrap()
            .replace("\"value\":[365566360]", "\"value\":[365566361]");
        std::fs::write(&p1, tampered).unwrap();

        let report = cache.doctor().expect("root exists");
        assert_eq!(report.scanned, 4);
        assert_eq!(report.valid, 2);
        assert_eq!(report.quarantined, 2);
        assert_eq!(report.misplaced, 0);
        assert_eq!(report.quarantine_total, 2);
        // A second pass finds a clean tree and keeps the quarantine tally.
        let again = cache.doctor().expect("root exists");
        assert_eq!(again.scanned, 2);
        assert_eq!(again.quarantined, 0);
        assert_eq!(again.quarantine_total, 2);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn doctor_counts_misplaced_entries_and_rejects_a_missing_root() {
        let cache = ResultCache::at(tmp_root("doctor-misplaced"));
        assert!(cache.store(&key(), &vec![1u64]));
        let path = cache.path_for(&key());
        std::fs::rename(&path, path.with_file_name("0000000000000bad.json")).unwrap();
        let report = cache.doctor().expect("root exists");
        assert_eq!((report.scanned, report.valid, report.misplaced), (1, 1, 1));
        assert_eq!(report.quarantined, 0);

        let gone = ResultCache::at(tmp_root("doctor-gone"));
        let err = gone.doctor().expect_err("missing root");
        assert!(err.contains("does not exist"), "{err}");
        let _ = std::fs::remove_dir_all(cache.root());
    }
}
