//! A per-leg deadline watchdog with bounded retries.
//!
//! A stalled leg (a livelocked simulation bug, an injected chaos stall,
//! an NFS hiccup under the cache) must not hang the whole pool. The
//! watchdog wraps one leg attempt in a deadline: a monitor thread trips
//! a [`CancelToken`] when the deadline passes, the attempt notices the
//! token at its next cooperative checkpoint and bails out, and the
//! watchdog retries with exponential backoff up to a bounded budget.
//! A leg that exhausts the budget is reported as
//! [`GuardedOutcome::TimedOut`] — an error naming the leg, never a hang.
//!
//! Cancellation is **cooperative** because safe Rust cannot kill a
//! thread: an attempt receives the token and is expected to poll it at
//! its own checkpoints. The real simulation legs in this workspace are
//! short, pure CPU and never block, so in practice only injected chaos
//! stalls (which poll the token in their sleep loop) ever observe a
//! cancellation — the watchdog exists so that *if* a leg ever does
//! stall, the campaign degrades to a clean `TimedOut` report instead of
//! an unbounded hang.
//!
//! With no timeout configured ([`WatchdogPolicy::none`], the default)
//! the guard is a direct call: no threads, no atomics on the leg path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag handed to each guarded attempt.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the deadline has passed; attempts poll this at their
    /// cooperative checkpoints and return `None` when it is set.
    pub fn cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Trips the token. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }
}

/// What a guarded leg produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardedOutcome<T> {
    /// The attempt completed (possibly after retries).
    Done(T),
    /// Every attempt hit the deadline; `attempts` were made in total.
    TimedOut {
        /// How many attempts were cancelled before giving up.
        attempts: u32,
    },
}

/// Deadline-and-retry policy for one leg attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogPolicy {
    /// Per-attempt deadline; `None` disables the watchdog entirely.
    pub timeout: Option<Duration>,
    /// Total attempt budget (first try + retries), at least 1.
    pub max_attempts: u32,
    /// Base backoff slept after the first cancelled attempt; doubles per
    /// retry, capped at 2 s.
    pub backoff: Duration,
}

/// Upper bound on a single backoff sleep.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy::none()
    }
}

impl WatchdogPolicy {
    /// No deadline: `run` is a plain call with zero overhead.
    #[must_use]
    pub fn none() -> Self {
        WatchdogPolicy { timeout: None, max_attempts: 3, backoff: Duration::from_millis(50) }
    }

    /// A watchdog with the given per-attempt deadline and the default
    /// retry budget (3 attempts, 50 ms doubling backoff).
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> Self {
        WatchdogPolicy { timeout: Some(timeout), ..WatchdogPolicy::none() }
    }

    /// Parses `CAP_LEG_TIMEOUT` (fractional seconds, > 0). Unset means
    /// no deadline.
    ///
    /// # Errors
    /// A set-but-invalid value is a hard error naming the variable, so a
    /// typo cannot silently disable the watchdog.
    pub fn from_env() -> Result<Self, String> {
        let Some(raw) = std::env::var_os("CAP_LEG_TIMEOUT") else {
            return Ok(WatchdogPolicy::none());
        };
        let text = raw.to_string_lossy();
        match parse_timeout_seconds(&text) {
            Some(d) => Ok(WatchdogPolicy::with_timeout(d)),
            None => Err(format!(
                "CAP_LEG_TIMEOUT must be a positive number of seconds, got `{text}`"
            )),
        }
    }

    /// Resolves the effective policy: an explicit CLI `--leg-timeout`
    /// (already parsed to a duration) wins over `CAP_LEG_TIMEOUT`.
    ///
    /// # Errors
    /// Propagates the [`WatchdogPolicy::from_env`] error.
    pub fn resolve(cli_timeout: Option<Duration>) -> Result<Self, String> {
        match cli_timeout {
            Some(d) => Ok(WatchdogPolicy::with_timeout(d)),
            None => WatchdogPolicy::from_env(),
        }
    }

    /// Runs one leg under this policy. `attempt` receives the token and
    /// must return `None` if (and only if) it observed a cancellation.
    pub fn run<T>(&self, attempt: impl Fn(&CancelToken) -> Option<T>) -> GuardedOutcome<T> {
        let Some(timeout) = self.timeout else {
            // No deadline: the token is never tripped, so a cooperative
            // attempt always completes.
            return match attempt(&CancelToken::new()) {
                Some(v) => GuardedOutcome::Done(v),
                None => GuardedOutcome::TimedOut { attempts: 1 },
            };
        };
        let budget = self.max_attempts.max(1);
        for attempt_no in 1..=budget {
            let token = CancelToken::new();
            let done = AtomicBool::new(false);
            let result = std::thread::scope(|scope| {
                let monitor_token = token.clone();
                let done = &done;
                scope.spawn(move || {
                    let deadline = Instant::now() + timeout;
                    // Sleep in short slices so the monitor notices a
                    // finished attempt promptly instead of holding the
                    // scope open for the full deadline.
                    let slice = (timeout / 10).min(Duration::from_millis(10)).max(Duration::from_millis(1));
                    while !done.load(Ordering::Relaxed) {
                        if Instant::now() >= deadline {
                            monitor_token.cancel();
                            return;
                        }
                        std::thread::sleep(slice);
                    }
                });
                let result = attempt(&token);
                done.store(true, Ordering::Relaxed);
                result
            });
            if let Some(v) = result {
                return GuardedOutcome::Done(v);
            }
            if attempt_no < budget {
                let exp = attempt_no.saturating_sub(1).min(8);
                std::thread::sleep((self.backoff * 2u32.pow(exp)).min(BACKOFF_CAP));
            }
        }
        GuardedOutcome::TimedOut { attempts: budget }
    }
}

/// Parses a strictly positive, finite fractional-seconds string.
pub fn parse_timeout_seconds(text: &str) -> Option<Duration> {
    let secs: f64 = text.trim().parse().ok()?;
    if secs.is_finite() && secs > 0.0 {
        Some(Duration::from_secs_f64(secs))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_timeout_is_a_direct_call() {
        let out = WatchdogPolicy::none().run(|token| {
            assert!(!token.cancelled());
            Some(42u32)
        });
        assert_eq!(out, GuardedOutcome::Done(42));
    }

    #[test]
    fn fast_attempt_completes_under_a_deadline() {
        let out = WatchdogPolicy::with_timeout(Duration::from_secs(5)).run(|_| Some(7u32));
        assert_eq!(out, GuardedOutcome::Done(7));
    }

    #[test]
    fn stubborn_stall_times_out_with_bounded_attempts() {
        let policy = WatchdogPolicy {
            timeout: Some(Duration::from_millis(30)),
            max_attempts: 2,
            backoff: Duration::from_millis(1),
        };
        let started = Instant::now();
        let out = policy.run(|token| -> Option<u32> {
            // A cooperative stall that never finishes on its own.
            while !token.cancelled() {
                std::thread::sleep(Duration::from_millis(2));
            }
            None
        });
        assert_eq!(out, GuardedOutcome::TimedOut { attempts: 2 });
        // Two 30 ms deadlines plus backoff — nowhere near a hang.
        assert!(started.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn transient_stall_succeeds_on_retry() {
        let tries = AtomicBool::new(false);
        let policy = WatchdogPolicy {
            timeout: Some(Duration::from_millis(50)),
            max_attempts: 3,
            backoff: Duration::from_millis(1),
        };
        let out = policy.run(|token| -> Option<u32> {
            if !tries.swap(true, Ordering::Relaxed) {
                // First attempt stalls until cancelled.
                while !token.cancelled() {
                    std::thread::sleep(Duration::from_millis(2));
                }
                return None;
            }
            Some(9)
        });
        assert_eq!(out, GuardedOutcome::Done(9));
    }

    #[test]
    fn timeout_parsing_is_strict() {
        assert_eq!(parse_timeout_seconds("0.5"), Some(Duration::from_millis(500)));
        assert_eq!(parse_timeout_seconds("2"), Some(Duration::from_secs(2)));
        for bad in ["0", "-1", "abc", "", "inf", "nan"] {
            assert_eq!(parse_timeout_seconds(bad), None, "{bad}");
        }
    }

    // The sole test that mutates CAP_LEG_TIMEOUT, to avoid env races.
    #[test]
    fn cap_leg_timeout_env_is_validated_strictly() {
        std::env::set_var("CAP_LEG_TIMEOUT", "1.5");
        let policy = WatchdogPolicy::from_env().expect("valid");
        assert_eq!(policy.timeout, Some(Duration::from_millis(1500)));
        // An explicit CLI value wins over the environment.
        let cli = WatchdogPolicy::resolve(Some(Duration::from_millis(250))).expect("valid");
        assert_eq!(cli.timeout, Some(Duration::from_millis(250)));
        for bad in ["0", "forever", "-2"] {
            std::env::set_var("CAP_LEG_TIMEOUT", bad);
            let err = WatchdogPolicy::from_env().expect_err(bad);
            assert!(err.contains("CAP_LEG_TIMEOUT"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
        std::env::remove_var("CAP_LEG_TIMEOUT");
        assert_eq!(WatchdogPolicy::from_env().expect("unset is fine").timeout, None);
    }
}
