//! Deterministic harness-level fault injection.
//!
//! PR 1's fault harness perturbs the *simulated hardware*; this module
//! perturbs the *campaign engine itself* — the thing `capsim chaos`
//! exists to prove crash-safe. Three fault kinds are supported, all
//! chosen deterministically from a seed and the leg's stable label so
//! the same faults fire regardless of `--jobs` or scheduling:
//!
//! * **panics** (`CAP_CHAOS_PANIC=pct:seed`) — the leg panics before
//!   computing, exercising the pool's containment and the journal's
//!   resumability;
//! * **stalls** (`CAP_CHAOS_STALL=pct:seed:ms`) — the leg sleeps
//!   cooperatively for `ms` milliseconds, polling its [`CancelToken`],
//!   exercising the watchdog's deadline/retry path;
//! * **kills** (`CAP_CHAOS_KILL_AFTER_LEG=n`, handled by the journal) —
//!   the process exits abruptly after the `n`-th journal append,
//!   simulating preemption at a leg boundary.
//!
//! The knobs are environment variables (not CLI flags) on purpose: the
//! `capsim chaos` orchestrator injects them into child processes, and
//! they flow through every layer without widening any API.

use crate::cache::fnv64;
use crate::watchdog::CancelToken;
use std::time::{Duration, Instant};

/// A seeded injector of harness-level faults, built from the
/// environment. Probabilities are per-leg percentages keyed by the
/// leg's label, so outcomes are independent of worker scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosInjector {
    panic_pct: Option<(u8, u64)>,
    stall: Option<(u8, u64, u64)>,
}

/// Parses `pct:seed`, with `pct` in `0..=100`.
fn parse_pct_seed(text: &str) -> Option<(u8, u64)> {
    let (pct, seed) = text.split_once(':')?;
    let pct: u8 = pct.parse().ok()?;
    let seed: u64 = seed.parse().ok()?;
    (pct <= 100).then_some((pct, seed))
}

impl ChaosInjector {
    /// The injector described by `CAP_CHAOS_PANIC` / `CAP_CHAOS_STALL`,
    /// or `None` when neither is set.
    ///
    /// # Errors
    /// A malformed value is a hard error naming the variable — a typo
    /// must not silently run the campaign un-chaosed.
    pub fn from_env() -> Result<Option<Self>, String> {
        let panic_pct = match std::env::var_os("CAP_CHAOS_PANIC") {
            None => None,
            Some(raw) => {
                let text = raw.to_string_lossy();
                Some(parse_pct_seed(&text).ok_or(format!(
                    "CAP_CHAOS_PANIC must be `pct:seed` with pct 0..=100, got `{text}`"
                ))?)
            }
        };
        let stall = match std::env::var_os("CAP_CHAOS_STALL") {
            None => None,
            Some(raw) => {
                let text = raw.to_string_lossy();
                let parsed = text.rsplit_once(':').and_then(|(head, ms)| {
                    let (pct, seed) = parse_pct_seed(head)?;
                    let ms: u64 = ms.parse().ok()?;
                    Some((pct, seed, ms))
                });
                Some(parsed.ok_or(format!(
                    "CAP_CHAOS_STALL must be `pct:seed:ms` with pct 0..=100, got `{text}`"
                ))?)
            }
        };
        if panic_pct.is_none() && stall.is_none() {
            return Ok(None);
        }
        Ok(Some(ChaosInjector { panic_pct, stall }))
    }

    /// Deterministic per-leg roll: true for `pct`% of labels under `seed`.
    fn roll(kind: &str, pct: u8, seed: u64, leg: &str) -> bool {
        let h = fnv64(&format!("{kind}|{seed:#x}|{leg}"));
        (h % 100) < u64::from(pct)
    }

    /// Whether this leg is chosen to panic.
    pub fn should_panic(&self, leg: &str) -> bool {
        self.panic_pct
            .is_some_and(|(pct, seed)| Self::roll("panic", pct, seed, leg))
    }

    /// Runs the leg's injected stall, if it was chosen for one. Sleeps
    /// cooperatively in short slices, polling `token`; returns `false`
    /// if the watchdog cancelled the attempt mid-stall.
    pub fn stall(&self, leg: &str, token: &CancelToken) -> bool {
        let Some((pct, seed, ms)) = self.stall else {
            return true;
        };
        if !Self::roll("stall", pct, seed, leg) {
            return true;
        }
        let deadline = Instant::now() + Duration::from_millis(ms);
        while Instant::now() < deadline {
            if token.cancelled() {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        !token.cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(panic_pct: Option<(u8, u64)>, stall: Option<(u8, u64, u64)>) -> ChaosInjector {
        ChaosInjector { panic_pct, stall }
    }

    #[test]
    fn rolls_are_deterministic_and_label_keyed() {
        let c = injector(Some((40, 7)), None);
        let a = c.should_panic("cache-sweep|gcc|point=3");
        for _ in 0..10 {
            assert_eq!(c.should_panic("cache-sweep|gcc|point=3"), a);
        }
        // Across many labels roughly pct% fire — sanity, not statistics.
        let fired = (0..200).filter(|i| c.should_panic(&format!("leg-{i}"))).count();
        assert!((40..=120).contains(&fired), "fired {fired}/200 at 40%");
    }

    #[test]
    fn zero_and_full_percent_are_exact() {
        let never = injector(Some((0, 1)), None);
        let always = injector(Some((100, 1)), None);
        for i in 0..50 {
            let leg = format!("leg-{i}");
            assert!(!never.should_panic(&leg));
            assert!(always.should_panic(&leg));
        }
    }

    #[test]
    fn stall_respects_cancellation() {
        let c = injector(None, Some((100, 3, 60_000)));
        let token = CancelToken::new();
        token.cancel();
        let started = Instant::now();
        assert!(!c.stall("any-leg", &token), "cancelled stall reports failure");
        assert!(started.elapsed() < Duration::from_secs(5));
        // An un-chosen leg never stalls.
        let none = injector(None, Some((0, 3, 60_000)));
        assert!(none.stall("any-leg", &CancelToken::new()));
    }

    #[test]
    fn short_stall_completes() {
        let c = injector(None, Some((100, 3, 10)));
        assert!(c.stall("leg", &CancelToken::new()));
    }

    #[test]
    fn spec_parsing_is_strict() {
        assert_eq!(parse_pct_seed("30:12"), Some((30, 12)));
        for bad in ["", "30", "101:4", "-1:4", "a:b", "30:"] {
            assert_eq!(parse_pct_seed(bad), None, "{bad}");
        }
    }

    // The sole test mutating the chaos env vars, to avoid races.
    #[test]
    fn chaos_env_is_validated_strictly() {
        std::env::remove_var("CAP_CHAOS_PANIC");
        std::env::remove_var("CAP_CHAOS_STALL");
        assert_eq!(ChaosInjector::from_env(), Ok(None));

        std::env::set_var("CAP_CHAOS_PANIC", "25:9");
        let c = ChaosInjector::from_env().expect("valid").expect("present");
        assert_eq!(c, injector(Some((25, 9)), None));

        std::env::set_var("CAP_CHAOS_STALL", "100:9:250");
        let c = ChaosInjector::from_env().expect("valid").expect("present");
        assert_eq!(c, injector(Some((25, 9)), Some((100, 9, 250))));

        for (var, bad) in [("CAP_CHAOS_PANIC", "200:1"), ("CAP_CHAOS_STALL", "10:2")] {
            std::env::set_var(var, bad);
            let err = ChaosInjector::from_env().expect_err(bad);
            assert!(err.contains(var), "{err}");
            assert!(err.contains(bad), "{err}");
            std::env::remove_var(var);
        }
        std::env::remove_var("CAP_CHAOS_PANIC");
        std::env::remove_var("CAP_CHAOS_STALL");
    }
}
