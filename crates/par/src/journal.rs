//! The write-ahead leg journal: crash-safe campaign progress.
//!
//! A sweep or fault campaign is a sequence of *legs* (one curve, one
//! fault-campaign structure). The journal records each completed leg's
//! result as one JSONL entry, so a killed run can be resumed with
//! `capsim sweep --resume` / `capsim faults --resume`: journaled legs
//! replay byte-identically (the vendored JSON reader/writer round-trips
//! `f64` exactly) and only the remainder is recomputed.
//!
//! **File format** (version [`JOURNAL_FORMAT_VERSION`]): line 1 is a
//! header binding the journal to one experiment identity —
//! `{"journal":"cap-leg-journal","format":F,"experiment":E,"seed":S,`
//! `"scale":C,"policy":P,"results_version":V}` — and every later line
//! is `{"leg":<canonical key>,"sum":"<fnv64 hex>","value":<result>}`.
//! The checksum covers the value's exact serialized text, so a torn or
//! bit-rotted entry is detected and recomputed rather than trusted.
//!
//! **Durability**: every append rewrites the whole journal to a temp
//! file and renames it over the old one. Entries are small and few
//! (tens per campaign), and the rename makes each leg boundary an
//! atomic commit point — a kill between legs never leaves a torn file.
//! That same property is what `CAP_CHAOS_KILL_AFTER_LEG=n` exploits:
//! the journal exits the process with [`CHAOS_KILL_EXIT`] right after
//! the `n`-th append, simulating preemption exactly at a leg boundary.
//!
//! **Single writer, enforced.** The whole-file-rewrite scheme is only
//! crash-safe with one writer: two processes appending to the same
//! journal would take turns renaming over each other's view and
//! silently lose legs. [`Journal::begin`] therefore claims an advisory
//! `<journal>.lock` file containing the holder's PID, released when the
//! journal is dropped. A second writer fails fast with an error naming
//! the holder instead of corrupting anything. A lock naming a dead PID
//! — the residue of a chaos kill or a crashed campaign — is stale and
//! reclaimed automatically, so `--resume` after a crash needs no manual
//! cleanup.

use crate::cache::fnv64;
use serde::Serialize;
use serde_json::Value;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Bump when the journal file layout changes.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Exit code used by the simulated chaos kill (`CAP_CHAOS_KILL_AFTER_LEG`),
/// distinct from every real exit path so tests can assert on it.
pub const CHAOS_KILL_EXIT: i32 = 86;

/// The identity a journal is bound to; resuming under a different
/// identity is a hard error, not a silent replay of foreign results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Experiment kind, e.g. `"sweep-all"` or `"faults-radar"`.
    pub experiment: String,
    /// Root seed of the campaign.
    pub seed: u64,
    /// Experiment scale name (`smoke` / `default` / `full`).
    pub scale: String,
    /// Configuration-management policy, when one applies.
    pub policy: Option<String>,
    /// The caller's semantic results version (`SWEEP_RESULTS_VERSION`).
    pub results_version: u32,
}

impl JournalHeader {
    fn to_line(&self) -> String {
        let mut s = format!(
            "{{\"journal\":\"cap-leg-journal\",\"format\":{JOURNAL_FORMAT_VERSION},\"experiment\":"
        );
        serde::write_json_string(&mut s, &self.experiment);
        s.push_str(&format!(",\"seed\":{},\"scale\":", self.seed));
        serde::write_json_string(&mut s, &self.scale);
        s.push_str(",\"policy\":");
        match &self.policy {
            Some(p) => serde::write_json_string(&mut s, p),
            None => s.push_str("null"),
        }
        s.push_str(&format!(",\"results_version\":{}}}", self.results_version));
        s
    }

    fn parse_line(line: &str) -> Option<(u32, JournalHeader)> {
        let doc: Value = serde_json::from_str(line).ok()?;
        if doc.get("journal").and_then(Value::as_str) != Some("cap-leg-journal") {
            return None;
        }
        let format = u32::try_from(doc.get("format").and_then(Value::as_u64)?).ok()?;
        let policy = match doc.get("policy")? {
            Value::Null => None,
            v => Some(v.as_str()?.to_string()),
        };
        Some((
            format,
            JournalHeader {
                experiment: doc.get("experiment").and_then(Value::as_str)?.to_string(),
                seed: doc.get("seed").and_then(Value::as_u64)?,
                scale: doc.get("scale").and_then(Value::as_str)?.to_string(),
                policy,
                results_version: u32::try_from(doc.get("results_version").and_then(Value::as_u64)?)
                    .ok()?,
            },
        ))
    }
}

/// One journal entry's serialized line. The prefix is reconstructed
/// from the parsed fields on read, so the checksum provably covers the
/// exact value text (see [`entry_value_text`]).
fn entry_line(leg: &str, value_text: &str) -> String {
    let mut s = String::from("{\"leg\":");
    serde::write_json_string(&mut s, leg);
    s.push_str(&format!(",\"sum\":\"{:016x}\",\"value\":", fnv64(value_text)));
    s.push_str(value_text);
    s.push('}');
    s
}

/// Extracts and verifies the checksummed value text of one entry line.
/// Returns `(leg, value_text)` or `None` for any structural or checksum
/// deviation.
fn parse_entry(line: &str) -> Option<(String, String)> {
    let doc: Value = serde_json::from_str(line).ok()?;
    let leg = doc.get("leg").and_then(Value::as_str)?.to_string();
    let sum = doc.get("sum").and_then(Value::as_str)?;
    let mut prefix = String::from("{\"leg\":");
    serde::write_json_string(&mut prefix, &leg);
    prefix.push_str(&format!(",\"sum\":\"{sum}\",\"value\":"));
    let value_text = line.strip_prefix(prefix.as_str())?.strip_suffix('}')?;
    if format!("{:016x}", fnv64(value_text)) != sum {
        return None;
    }
    Some((leg, value_text.to_string()))
}

/// Whether a PID belongs to a live process, via procfs. On platforms
/// without `/proc` this reports "dead", which makes every foreign lock
/// reclaimable there — the lock is advisory, and such platforms had no
/// writer protection at all before it existed.
fn process_alive(pid: u32) -> bool {
    let proc_root = Path::new("/proc");
    if !proc_root.is_dir() {
        return false;
    }
    proc_root.join(pid.to_string()).exists()
}

/// The advisory single-writer lock guarding one journal path; holds
/// `<journal>.lock` containing our PID until dropped.
#[derive(Debug)]
struct JournalLock {
    path: PathBuf,
}

impl JournalLock {
    /// Claims `<journal>.lock` via `create_new` (atomic on every real
    /// filesystem), writing our PID into it. An existing lock naming a
    /// dead PID is stale and reclaimed; a live holder — or a lock whose
    /// contents cannot be read as a PID — is a hard error naming it.
    fn acquire(journal_path: &Path) -> Result<JournalLock, String> {
        use std::io::Write as _;
        let file_name =
            journal_path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let path = journal_path.with_file_name(format!("{file_name}.lock"));
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create journal directory {}: {e}", dir.display()))?;
        }
        // At most two attempts: the second runs only after a stale lock
        // was cleared, so a genuinely contended path cannot spin.
        for _ in 0..2 {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    let _ = file.write_all(std::process::id().to_string().as_bytes());
                    return Ok(JournalLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if pid != std::process::id() && !process_alive(pid) => {
                            let _ = std::fs::remove_file(&path);
                        }
                        _ => {
                            let who = holder.map_or_else(
                                || String::from("an unidentified process"),
                                |pid| format!("pid {pid}"),
                            );
                            return Err(format!(
                                "{}: journal is locked by {who} — a second writer would corrupt it; wait for that run to finish, or delete {} if you are certain it is gone",
                                journal_path.display(),
                                path.display(),
                            ));
                        }
                    }
                }
                Err(e) => {
                    return Err(format!("cannot create journal lock {}: {e}", path.display()))
                }
            }
        }
        Err(format!(
            "{}: journal lock {} is contended — another writer claimed it while a stale lock was being cleared",
            journal_path.display(),
            path.display(),
        ))
    }
}

impl Drop for JournalLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A write-ahead journal of completed campaign legs.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    header: JournalHeader,
    /// `(leg, value_text)` in append order; rewritten verbatim on each
    /// append so a resumed journal stays byte-stable.
    entries: Vec<(String, String)>,
    index: HashMap<String, usize>,
    replayable: usize,
    appends: u64,
    kill_after: Option<u64>,
    dropped: usize,
    /// Held for the journal's whole lifetime purely for its `Drop`
    /// (which deletes the lock file). A chaos kill or crash leaves the
    /// file behind, where the dead-PID check reclaims it on the next
    /// `begin`.
    _lock: JournalLock,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for the given identity.
    ///
    /// With `resume` false any existing file is discarded and a fresh
    /// header is committed. With `resume` true an existing file must
    /// carry a matching header (else a hard error naming the journal);
    /// its entries are loaded — corrupt or truncated lines are dropped
    /// and recomputed — and the file is rewritten compacted. A missing
    /// file resumes as an empty journal.
    ///
    /// # Errors
    /// Header/format mismatch, an invalid `CAP_CHAOS_KILL_AFTER_LEG`
    /// value, an unwritable journal path, or a journal already locked by
    /// a live writer (see the module docs on single-writer enforcement).
    pub fn begin(path: impl Into<PathBuf>, header: JournalHeader, resume: bool) -> Result<Self, String> {
        let path = path.into();
        let lock = JournalLock::acquire(&path)?;
        let kill_after = match std::env::var_os("CAP_CHAOS_KILL_AFTER_LEG") {
            None => None,
            Some(raw) => {
                let text = raw.to_string_lossy();
                match text.parse::<u64>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        return Err(format!(
                            "CAP_CHAOS_KILL_AFTER_LEG must be a positive integer, got `{text}`"
                        ))
                    }
                }
            }
        };
        let mut journal = Journal {
            path,
            header,
            entries: Vec::new(),
            index: HashMap::new(),
            replayable: 0,
            appends: 0,
            kill_after,
            dropped: 0,
            _lock: lock,
        };
        if resume {
            journal.load_existing()?;
        }
        journal.flush()?;
        Ok(journal)
    }

    fn load_existing(&mut self) -> Result<(), String> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            // Nothing to resume: start empty (the caller is told via len()).
            Err(_) => return Ok(()),
        };
        let mut lines = text.split_inclusive('\n');
        let Some(first) = lines.next() else { return Ok(()) };
        let Some((format, found)) = JournalHeader::parse_line(first.trim_end_matches('\n')) else {
            return Err(format!("{}: not a cap leg journal", self.path.display()));
        };
        if format != JOURNAL_FORMAT_VERSION {
            return Err(format!(
                "{}: journal format v{format}, this binary writes v{JOURNAL_FORMAT_VERSION} — start a fresh run without --resume",
                self.path.display()
            ));
        }
        if found != self.header {
            return Err(format!(
                "{}: journal belongs to a different run (found experiment={} seed={:#x} scale={} policy={} results_version={}) — start a fresh run without --resume",
                self.path.display(),
                found.experiment,
                found.seed,
                found.scale,
                found.policy.as_deref().unwrap_or("-"),
                found.results_version,
            ));
        }
        for line in lines {
            let complete = line.ends_with('\n');
            let line = line.trim_end_matches('\n');
            if line.is_empty() {
                continue;
            }
            // A final line without its newline is the signature of a torn
            // write; it and any unparseable line are dropped (recomputed),
            // never trusted.
            match parse_entry(line) {
                Some((leg, value_text)) if complete => self.push_entry(leg, value_text),
                _ => self.dropped += 1,
            }
        }
        self.replayable = self.entries.len();
        Ok(())
    }

    fn push_entry(&mut self, leg: String, value_text: String) {
        match self.index.get(&leg) {
            Some(&i) => self.entries[i] = (leg, value_text),
            None => {
                self.index.insert(leg.clone(), self.entries.len());
                self.entries.push((leg, value_text));
            }
        }
    }

    /// Rewrites the whole journal through a temp file + atomic rename.
    fn flush(&self) -> Result<(), String> {
        let dir = self.path.parent().filter(|d| !d.as_os_str().is_empty());
        if let Some(dir) = dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create journal directory {}: {e}", dir.display()))?;
        }
        let mut text = self.header.to_line();
        text.push('\n');
        for (leg, value_text) in &self.entries {
            text.push_str(&entry_line(leg, value_text));
            text.push('\n');
        }
        let file_name = self.path.file_name().map(|n| n.to_string_lossy().into_owned());
        let tmp = self
            .path
            .with_file_name(format!(".tmp-{}-{}", file_name.unwrap_or_default(), std::process::id()));
        std::fs::write(&tmp, &text)
            .map_err(|e| format!("cannot write journal {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| format!("cannot commit journal {}: {e}", self.path.display()))
    }

    /// Looks up a completed leg's value. `None` means the leg must run.
    pub fn lookup(&self, leg: &str) -> Option<Value> {
        let &i = self.index.get(leg)?;
        serde_json::from_str(&self.entries[i].1).ok()
    }

    /// Records a completed leg and commits the journal to disk. If
    /// `CAP_CHAOS_KILL_AFTER_LEG=n` is set, the process exits with
    /// [`CHAOS_KILL_EXIT`] immediately after the `n`-th append — the
    /// journal is already durable at that point, which is the property
    /// under test.
    ///
    /// # Errors
    /// An unwritable journal: crash-safety is the journal's whole job,
    /// so failing to persist is a hard error, not best-effort.
    pub fn append<T: Serialize>(&mut self, leg: &str, value: &T) -> Result<(), String> {
        let mut value_text = String::new();
        value.json_into(&mut value_text);
        self.push_entry(leg.to_string(), value_text);
        self.flush()?;
        self.appends += 1;
        if self.kill_after.is_some_and(|n| self.appends >= n) {
            eprintln!(
                "chaos: simulated kill at leg boundary after {} append(s); resume with --resume",
                self.appends
            );
            std::process::exit(CHAOS_KILL_EXIT);
        }
        Ok(())
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many legs the journal currently holds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal holds no legs yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many legs were loaded from disk at `begin` (the replayable
    /// prefix a `--resume` run starts from).
    pub fn replayed(&self) -> usize {
        self.replayable
    }

    /// Corrupt or truncated lines dropped while resuming.
    pub fn dropped(&self) -> usize {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cap-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("run.jsonl")
    }

    fn header() -> JournalHeader {
        JournalHeader {
            experiment: "sweep-queue".into(),
            seed: 0x15CA_1998,
            scale: "smoke".into(),
            policy: None,
            results_version: 1,
        }
    }

    #[test]
    fn append_then_resume_replays_identical_values() {
        let path = tmp_path("roundtrip");
        let mut j = Journal::begin(&path, header(), false).unwrap();
        j.append("leg-a", &vec![0.1f64, 1.0 / 3.0]).unwrap();
        j.append("leg-b", &vec![2.5f64]).unwrap();
        assert_eq!(j.len(), 2);
        drop(j);

        let j2 = Journal::begin(&path, header(), true).unwrap();
        assert_eq!(j2.len(), 2);
        assert_eq!(j2.replayed(), 2);
        assert_eq!(j2.dropped(), 0);
        let v = j2.lookup("leg-a").expect("replay");
        let xs = v.as_array().unwrap();
        assert_eq!(xs[1].as_f64().unwrap().to_bits(), (1.0f64 / 3.0).to_bits());
        assert!(j2.lookup("leg-c").is_none());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn fresh_begin_discards_an_existing_journal() {
        let path = tmp_path("fresh");
        let mut j = Journal::begin(&path, header(), false).unwrap();
        j.append("leg-a", &1u64).unwrap();
        drop(j);
        let j2 = Journal::begin(&path, header(), false).unwrap();
        assert!(j2.is_empty());
        assert!(j2.lookup("leg-a").is_none());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn resume_rejects_a_foreign_header() {
        let path = tmp_path("foreign");
        let mut j = Journal::begin(&path, header(), false).unwrap();
        j.append("leg-a", &1u64).unwrap();
        drop(j);
        for other in [
            JournalHeader { seed: 7, ..header() },
            JournalHeader { experiment: "sweep-cache".into(), ..header() },
            JournalHeader { scale: "full".into(), ..header() },
            JournalHeader { policy: Some("hysteresis".into()), ..header() },
            JournalHeader { results_version: 99, ..header() },
        ] {
            let err = Journal::begin(&path, other.clone(), true).expect_err("mismatch");
            assert!(err.contains("different run"), "{err}");
            assert!(err.contains("--resume"), "{err}");
        }
        // A refused begin must not leave its writer lock behind.
        assert!(!path.with_file_name("run.jsonl.lock").exists());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn resume_of_a_missing_journal_starts_empty() {
        let path = tmp_path("missing");
        let j = Journal::begin(&path, header(), true).unwrap();
        assert!(j.is_empty());
        assert_eq!(j.replayed(), 0);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn corrupt_and_truncated_lines_are_dropped_not_trusted() {
        let path = tmp_path("corrupt");
        let mut j = Journal::begin(&path, header(), false).unwrap();
        j.append("leg-a", &vec![1u64]).unwrap();
        j.append("leg-b", &vec![2u64]).unwrap();
        drop(j);
        // Flip a byte inside leg-b's value, then append a torn final line.
        let text = std::fs::read_to_string(&path).unwrap().replace("\"value\":[2]", "\"value\":[3]");
        std::fs::write(&path, text + "{\"leg\":\"leg-c\",\"sum\":\"00").unwrap();

        let j2 = Journal::begin(&path, header(), true).unwrap();
        assert_eq!(j2.len(), 1, "only the intact leg survives");
        assert_eq!(j2.dropped(), 2);
        assert!(j2.lookup("leg-a").is_some());
        assert!(j2.lookup("leg-b").is_none(), "checksum mismatch is never trusted");
        assert!(j2.lookup("leg-c").is_none());
        drop(j2);
        // And the compacted rewrite is loadable again, cleanly.
        let j3 = Journal::begin(&path, header(), true).unwrap();
        assert_eq!((j3.len(), j3.dropped()), (1, 0));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn any_single_byte_flip_is_survivable() {
        // Exhaustive fault model: every byte of the journal, every bit.
        // Whatever the flip hits — header, leg name, checksum, value,
        // newline — resume must either fail with a clean structural
        // error or come back with each surviving leg bit-identical to
        // what was written; re-appending the dropped legs must then
        // restore the clean run's exact values. The leg names are
        // pairwise more than one bit apart, so no flip can silently
        // turn one leg into another.
        let path = tmp_path("bitflip");
        let legs: [(&str, Vec<f64>); 3] = [
            ("alpha", vec![1.25, -0.5, 1.0 / 3.0]),
            ("bravo", vec![0.1, 3.0e17]),
            ("charlie", vec![-9.75]),
        ];
        let mut j = Journal::begin(&path, header(), false).unwrap();
        for (leg, value) in &legs {
            j.append(leg, value).unwrap();
        }
        drop(j);
        let clean = std::fs::read(&path).unwrap();
        let clean_bits: Vec<Vec<u64>> = {
            let reference = Journal::begin(&path, header(), true).unwrap();
            legs.iter()
                .map(|(leg, _)| {
                    reference
                        .lookup(leg)
                        .unwrap()
                        .as_array()
                        .unwrap()
                        .iter()
                        .map(|v| v.as_f64().unwrap().to_bits())
                        .collect()
                })
                .collect()
        };

        let flip_path = path.parent().unwrap().join("bitflip-case.jsonl");
        for offset in 0..clean.len() {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[offset] ^= 1 << bit;
                std::fs::write(&flip_path, &bytes).unwrap();
                let mut resumed = match Journal::begin(&flip_path, header(), true) {
                    // Header or encoding damage: a clean refusal is a
                    // correct outcome; nothing was silently trusted.
                    Err(e) => {
                        assert!(!e.is_empty());
                        continue;
                    }
                    Ok(j) => j,
                };
                for ((leg, value), bits) in legs.iter().zip(&clean_bits) {
                    match resumed.lookup(leg) {
                        // Dropped (or renamed by the flip): recompute.
                        None => resumed.append(leg, value).unwrap(),
                        Some(v) => {
                            let got: Vec<u64> = v
                                .as_array()
                                .unwrap()
                                .iter()
                                .map(|x| x.as_f64().unwrap().to_bits())
                                .collect();
                            assert_eq!(
                                &got, bits,
                                "offset {offset} bit {bit}: surviving leg {leg} must be bit-identical"
                            );
                        }
                    }
                }
                for ((leg, _), bits) in legs.iter().zip(&clean_bits) {
                    let got: Vec<u64> = resumed
                        .lookup(leg)
                        .unwrap()
                        .as_array()
                        .unwrap()
                        .iter()
                        .map(|x| x.as_f64().unwrap().to_bits())
                        .collect();
                    assert_eq!(
                        &got, bits,
                        "offset {offset} bit {bit}: {leg} must replay the clean value after repair"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn garbage_file_is_rejected_with_a_clear_error() {
        let path = tmp_path("garbage");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "not a journal\n").unwrap();
        let err = Journal::begin(&path, header(), true).expect_err("garbage");
        assert!(err.contains("not a cap leg journal"), "{err}");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn reappending_a_leg_replaces_in_place() {
        let path = tmp_path("replace");
        let mut j = Journal::begin(&path, header(), false).unwrap();
        j.append("leg-a", &1u64).unwrap();
        j.append("leg-b", &2u64).unwrap();
        j.append("leg-a", &3u64).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.lookup("leg-a").unwrap().as_u64(), Some(3));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn a_second_live_writer_fails_fast_naming_the_holder() {
        let path = tmp_path("locked");
        let j = Journal::begin(&path, header(), false).unwrap();
        let err = Journal::begin(&path, header(), true).expect_err("second writer");
        assert!(err.contains("locked"), "{err}");
        assert!(err.contains(&std::process::id().to_string()), "holder pid named: {err}");
        assert!(err.contains("run.jsonl"), "journal named: {err}");
        // Releasing the first writer frees the path.
        drop(j);
        let j2 = Journal::begin(&path, header(), true).unwrap();
        assert!(j2.is_empty());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn a_stale_lock_from_a_dead_process_is_reclaimed() {
        let path = tmp_path("stale");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let lock = path.with_file_name("run.jsonl.lock");
        // Beyond Linux's default pid_max, so no live process can own it —
        // exactly what a chaos kill (`std::process::exit`) leaves behind.
        std::fs::write(&lock, "4194304999").unwrap();
        let j = Journal::begin(&path, header(), false).expect("stale lock is reclaimed");
        assert_eq!(
            std::fs::read_to_string(&lock).unwrap().trim(),
            std::process::id().to_string(),
            "the reclaimed lock names the new holder"
        );
        drop(j);
        assert!(!lock.exists(), "dropping the journal releases the lock");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn an_unreadable_lock_is_held_not_stolen() {
        let path = tmp_path("unreadable-lock");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let lock = path.with_file_name("run.jsonl.lock");
        std::fs::write(&lock, "not-a-pid").unwrap();
        let err = Journal::begin(&path, header(), false).expect_err("cannot prove staleness");
        assert!(err.contains("unidentified"), "{err}");
        assert!(err.contains(&lock.display().to_string()), "tells the user what to delete: {err}");
        assert!(lock.exists(), "an unprovable lock is never deleted");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn header_line_round_trips() {
        for h in [
            header(),
            JournalHeader { policy: Some("confidence".into()), ..header() },
        ] {
            let (format, parsed) = JournalHeader::parse_line(&h.to_line()).expect("parses");
            assert_eq!(format, JOURNAL_FORMAT_VERSION);
            assert_eq!(parsed, h);
        }
    }
}
