//! A work-stealing thread pool with deterministic ordered collection.
//!
//! The design is the classic per-worker-deque scheme scaled down to what
//! the sweep engine needs: tasks are known up front, so there is no
//! injector churn — items are dealt round-robin into per-worker deques,
//! each worker pops from the *front* of its own deque and, when empty,
//! steals from the *back* of a sibling's. Every task carries its
//! submission index and writes its result into a dedicated slot, so
//! [`Pool::ordered_map`] returns results in input order no matter which
//! worker ran what — the property the parallel/serial equivalence tests
//! lock down.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A fixed-width thread pool. `jobs == 1` runs everything inline on the
/// caller's thread (the serial reference path — same code, no spawns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool of `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Pool { jobs: jobs.max(1) }
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item, in parallel across the pool's workers,
    /// and returns the results **in input order**.
    ///
    /// `f` receives `(index, item)` and must be a pure function of them
    /// for parallel runs to equal serial runs (every caller in this
    /// workspace passes seeded, self-contained simulation legs).
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker.
    pub fn ordered_map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }

        // Deal tasks round-robin into per-worker deques.
        let mut queues: Vec<VecDeque<(usize, I)>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].push_back((i, item));
        }
        let queues: Vec<Mutex<VecDeque<(usize, I)>>> = queues.into_iter().map(Mutex::new).collect();
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for me in 0..workers {
                let queues = &queues;
                let slots = &slots;
                let f = &f;
                scope.spawn(move || loop {
                    // Own work first (front of own deque)...
                    let task = queues[me].lock().expect("pool queue poisoned").pop_front();
                    let (index, item) = match task {
                        Some(t) => t,
                        // ...then steal from the back of a sibling's.
                        None => {
                            let stolen = (1..workers).find_map(|d| {
                                queues[(me + d) % workers]
                                    .lock()
                                    .expect("pool queue poisoned")
                                    .pop_back()
                            });
                            match stolen {
                                Some(t) => t,
                                None => return,
                            }
                        }
                    };
                    let result = f(index, item);
                    *slots[index].lock().expect("pool slot poisoned") = Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("pool slot poisoned")
                    .expect("every submitted task completes")
            })
            .collect()
    }
}

/// Resolves a worker count: an explicit request (CLI `--jobs`) wins,
/// then the `CAP_JOBS` environment variable, then the machine's
/// available parallelism.
pub fn effective_jobs(requested: Option<usize>) -> usize {
    requested
        .or_else(|| std::env::var("CAP_JOBS").ok().and_then(|s| s.parse().ok()))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from))
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_preserves_input_order() {
        for jobs in [1, 2, 3, 8, 33] {
            let out = Pool::new(jobs).ordered_map((0..100u64).collect(), |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let work = |i: usize, x: u64| -> u64 {
            // A little CPU burn so workers genuinely interleave.
            (0..1000).fold(x, |acc, k| acc.wrapping_mul(6364136223846793005).wrapping_add(k + i as u64))
        };
        let serial = Pool::new(1).ordered_map((0..64u64).collect(), work);
        let parallel = Pool::new(8).ordered_map((0..64u64).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let empty: Vec<u64> = Pool::new(4).ordered_map(Vec::<u64>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(Pool::new(4).ordered_map(vec![7u64], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = Pool::new(64).ordered_map(vec![1u64, 2, 3], |_, x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
    }

    // `thread::scope` re-panics with its own payload, so only the fact
    // of the panic (not the message) crosses the join.
    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        Pool::new(4).ordered_map((0..8usize).collect(), |_, x| {
            assert!(x != 3, "leg 3 exploded");
            x
        });
    }

    #[test]
    fn effective_jobs_prefers_explicit_request() {
        assert_eq!(effective_jobs(Some(3)), 3);
        assert_eq!(effective_jobs(Some(0)), 1);
    }
}
