//! A work-stealing thread pool with deterministic ordered collection.
//!
//! The design is the classic per-worker-deque scheme scaled down to what
//! the sweep engine needs: tasks are known up front, so there is no
//! injector churn — items are dealt round-robin into per-worker deques,
//! each worker pops from the *front* of its own deque and, when empty,
//! steals from the *back* of a sibling's. Every task carries its
//! submission index and writes its result into a dedicated slot, so
//! [`Pool::ordered_map`] returns results in input order no matter which
//! worker ran what — the property the parallel/serial equivalence tests
//! lock down.
//!
//! Panics inside a task are contained per task: the first failing task's
//! index and message are captured, dispatch stops cleanly, and the batch
//! re-panics with `pool task <index> panicked: <message>` instead of a
//! generic scope-join payload that hides which leg failed. Every lock is
//! taken poison-recovering (`PoisonError::into_inner`), so a contained
//! panic can never cascade into a second "poisoned" panic in another
//! worker — the data under the lock is a plain slot or deque that is
//! valid at every instruction boundary.
//!
//! [`Pool::ordered_map_drain`] is the graceful-shutdown variant: it
//! checks the process-wide [`crate::shutdown::drain_requested`] flag at
//! every dispatch point and, once a drain is requested, stops pulling
//! new tasks and returns the completed prefix as
//! [`BatchResult::Drained`] so the caller can salvage and journal it.

use crate::shutdown::drain_requested;
use cap_obs::{Event, PoolBatchEvent, Recorder};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A fixed-width thread pool. `jobs == 1` runs everything inline on the
/// caller's thread (the serial reference path — same code, no spawns).
#[derive(Debug, Clone)]
pub struct Pool {
    jobs: usize,
    recorder: Arc<dyn Recorder>,
}

/// What a drain-aware batch produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchResult<T> {
    /// Every task ran; results are in input order.
    Complete(Vec<T>),
    /// A drain was requested mid-batch: `partial[i]` holds task `i`'s
    /// result if it finished before dispatch stopped.
    Drained {
        /// Per-task results, input-indexed, `None` for undispatched tasks.
        partial: Vec<Option<T>>,
        /// How many tasks completed.
        completed: usize,
    },
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

impl Pool {
    /// A pool of `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Pool {
            jobs: jobs.max(1),
            recorder: cap_obs::noop(),
        }
    }

    /// Attach a trace recorder; each `ordered_map` batch then emits one
    /// [`cap_obs::PoolBatchEvent`] with per-worker execution and steal
    /// counters.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item, in parallel across the pool's workers,
    /// and returns the results **in input order**.
    ///
    /// `f` receives `(index, item)` and must be a pure function of them
    /// for parallel runs to equal serial runs (every caller in this
    /// workspace passes seeded, self-contained simulation legs).
    ///
    /// # Panics
    ///
    /// If a task panics, dispatch stops and the call re-panics with
    /// `pool task <index> panicked: <message>` naming the first failing
    /// task (in completion order).
    pub fn ordered_map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        match self.run_batch(items, f, false) {
            BatchResult::Complete(out) => out,
            BatchResult::Drained { .. } => unreachable!("non-drain batches always complete"),
        }
    }

    /// Like [`Pool::ordered_map`], but honours the process-wide drain
    /// flag: once [`crate::shutdown::request_drain`] has been called,
    /// in-flight tasks finish, nothing new is dispatched, and the
    /// completed prefix comes back as [`BatchResult::Drained`].
    ///
    /// # Panics
    /// Same contract as [`Pool::ordered_map`] for task panics.
    pub fn ordered_map_drain<I, T, F>(&self, items: Vec<I>, f: F) -> BatchResult<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        self.run_batch(items, f, true)
    }

    fn run_batch<I, T, F>(&self, items: Vec<I>, f: F, drain_aware: bool) -> BatchResult<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            let mut out: Vec<Option<T>> = Vec::with_capacity(n);
            for (i, item) in items.into_iter().enumerate() {
                if drain_aware && drain_requested() {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(v) => out.push(Some(v)),
                    Err(payload) => {
                        panic!("pool task {i} panicked: {}", panic_message(payload.as_ref()))
                    }
                }
            }
            let completed = out.len();
            if self.recorder.enabled() {
                self.recorder.record(&Event::PoolBatch(PoolBatchEvent {
                    jobs: 1,
                    tasks: n as u64,
                    executed: vec![completed as u64],
                    steals: 0,
                }));
            }
            if completed < n {
                out.resize_with(n, || None);
                return BatchResult::Drained { partial: out, completed };
            }
            return BatchResult::Complete(out.into_iter().flatten().collect());
        }

        // Deal tasks round-robin into per-worker deques.
        let mut queues: Vec<VecDeque<(usize, I)>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].push_back((i, item));
        }
        let queues: Vec<Mutex<VecDeque<(usize, I)>>> = queues.into_iter().map(Mutex::new).collect();
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let executed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let steals = AtomicU64::new(0);
        let abort = AtomicBool::new(false);
        let failure: Mutex<Option<(usize, String)>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for me in 0..workers {
                let queues = &queues;
                let slots = &slots;
                let executed = &executed;
                let steals = &steals;
                let abort = &abort;
                let failure = &failure;
                let f = &f;
                scope.spawn(move || loop {
                    // A failed sibling means the batch result is already
                    // forfeit — and a requested drain means no new work
                    // may start. Either way, stop pulling tasks.
                    if abort.load(Ordering::Relaxed) || (drain_aware && drain_requested()) {
                        return;
                    }
                    // Own work first (front of own deque)...
                    let task = queues[me]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .pop_front();
                    let (index, item) = match task {
                        Some(t) => t,
                        // ...then steal from the back of a sibling's.
                        None => {
                            let stolen = (1..workers).find_map(|d| {
                                queues[(me + d) % workers]
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .pop_back()
                            });
                            match stolen {
                                Some(t) => {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    t
                                }
                                None => return,
                            }
                        }
                    };
                    match catch_unwind(AssertUnwindSafe(|| f(index, item))) {
                        Ok(result) => {
                            *slots[index].lock().unwrap_or_else(PoisonError::into_inner) =
                                Some(result);
                            executed[me].fetch_add(1, Ordering::Relaxed);
                        }
                        Err(payload) => {
                            let mut first =
                                failure.lock().unwrap_or_else(PoisonError::into_inner);
                            if first.is_none() {
                                *first = Some((index, panic_message(payload.as_ref())));
                            }
                            drop(first);
                            abort.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                });
            }
        });

        if let Some((index, message)) =
            failure.into_inner().unwrap_or_else(PoisonError::into_inner)
        {
            panic!("pool task {index} panicked: {message}");
        }

        if self.recorder.enabled() {
            self.recorder.record(&Event::PoolBatch(PoolBatchEvent {
                jobs: workers,
                tasks: n as u64,
                executed: executed.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                steals: steals.load(Ordering::Relaxed),
            }));
        }

        let partial: Vec<Option<T>> = slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        let completed = partial.iter().filter(|s| s.is_some()).count();
        if completed < n {
            debug_assert!(drain_aware, "only a drain may leave tasks unrun");
            return BatchResult::Drained { partial, completed };
        }
        BatchResult::Complete(partial.into_iter().flatten().collect())
    }
}

/// A counting semaphore bounding concurrent leg computation across
/// *independent* pools.
///
/// [`Pool`] workers are batch-scoped: each campaign's executor spins up
/// its own scoped threads. When the campaign service runs several
/// campaigns at once, handing every executor the same `Gate` caps the
/// total number of legs computing simultaneously at the server's
/// `--jobs`, so N concurrent campaigns still present one worker budget
/// to the machine. Followers waiting on a single-flight slot never hold
/// a permit — only code actually computing a leg does — so the gate
/// cannot deadlock against [`crate::singleflight::SingleFlight`].
#[derive(Debug)]
pub struct Gate {
    permits: Mutex<usize>,
    freed: std::sync::Condvar,
}

impl Gate {
    /// A gate with `permits` concurrent slots (clamped to at least 1).
    #[must_use]
    pub fn new(permits: usize) -> Self {
        Gate {
            permits: Mutex::new(permits.max(1)),
            freed: std::sync::Condvar::new(),
        }
    }

    /// Blocks until a slot is free and claims it; the permit returns
    /// its slot when dropped.
    pub fn acquire(&self) -> GatePermit<'_> {
        let mut free = self.permits.lock().unwrap_or_else(PoisonError::into_inner);
        while *free == 0 {
            free = self.freed.wait(free).unwrap_or_else(PoisonError::into_inner);
        }
        *free -= 1;
        GatePermit { gate: self }
    }
}

/// An RAII slot claimed from a [`Gate`]; dropping it frees the slot.
#[derive(Debug)]
pub struct GatePermit<'a> {
    gate: &'a Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        let mut free = self
            .gate
            .permits
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *free += 1;
        drop(free);
        self.gate.freed.notify_one();
    }
}

/// Reads the `CAP_JOBS` environment variable.
///
/// Unset means "no opinion" (`Ok(None)`). A set value must be a positive
/// integer; anything else — `abc`, `0`, `-3` — is a hard error instead of
/// being silently ignored, so a typo cannot quietly change how a sweep runs.
///
/// # Errors
/// Returns a human-readable message naming the variable and the rejected
/// value.
pub fn jobs_from_env() -> Result<Option<usize>, String> {
    let Some(raw) = std::env::var_os("CAP_JOBS") else {
        return Ok(None);
    };
    let text = raw.to_string_lossy();
    match text.parse::<usize>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        _ => Err(format!(
            "CAP_JOBS must be a positive integer, got `{text}`"
        )),
    }
}

/// Resolves a worker count: an explicit request (CLI `--jobs`) wins,
/// then the `CAP_JOBS` environment variable, then the machine's
/// available parallelism.
///
/// # Errors
/// Propagates the [`jobs_from_env`] error for an invalid `CAP_JOBS`.
pub fn effective_jobs(requested: Option<usize>) -> Result<usize, String> {
    if let Some(n) = requested {
        return Ok(n.max(1));
    }
    Ok(jobs_from_env()?
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from))
        .max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shutdown::{request_drain, reset_drain};
    use cap_obs::RingRecorder;

    #[test]
    fn ordered_map_preserves_input_order() {
        for jobs in [1, 2, 3, 8, 33] {
            let out = Pool::new(jobs).ordered_map((0..100u64).collect(), |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let work = |i: usize, x: u64| -> u64 {
            // A little CPU burn so workers genuinely interleave.
            (0..1000).fold(x, |acc, k| acc.wrapping_mul(6364136223846793005).wrapping_add(k + i as u64))
        };
        let serial = Pool::new(1).ordered_map((0..64u64).collect(), work);
        let parallel = Pool::new(8).ordered_map((0..64u64).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let empty: Vec<u64> = Pool::new(4).ordered_map(Vec::<u64>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(Pool::new(4).ordered_map(vec![7u64], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = Pool::new(64).ordered_map(vec![1u64, 2, 3], |_, x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
    }

    #[test]
    #[should_panic(expected = "pool task 3 panicked: leg 3 exploded")]
    fn worker_panic_names_the_failing_task() {
        Pool::new(4).ordered_map((0..8usize).collect(), |_, x| {
            assert!(x != 3, "leg 3 exploded");
            x
        });
    }

    #[test]
    #[should_panic(expected = "pool task 2 panicked: leg 2 exploded")]
    fn serial_panic_names_the_failing_task_too() {
        Pool::new(1).ordered_map((0..4usize).collect(), |_, x| {
            assert!(x != 2, "leg 2 exploded");
            x
        });
    }

    #[test]
    fn panic_stops_dispatch_cleanly() {
        // The panic must not cascade into "pool queue poisoned" or
        // "every submitted task completes" — the reported failure is the
        // real one, whichever task hits it first on this schedule.
        let err = std::panic::catch_unwind(|| {
            Pool::new(2).ordered_map((0..100usize).collect(), |_, x| {
                assert!(x % 7 != 3, "leg {x} exploded");
                x
            });
        })
        .expect_err("a leg must fail");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("panicked: leg"), "unexpected message: {msg}");
        assert!(!msg.contains("poisoned"), "poisoning leaked: {msg}");
    }

    #[test]
    fn batches_emit_pool_counters_when_traced() {
        let ring = Arc::new(RingRecorder::new());
        let pool = Pool::new(3).with_recorder(ring.clone());
        let out = pool.ordered_map((0..20u64).collect(), |_, x| x + 1);
        assert_eq!(out.len(), 20);
        let events = ring.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::PoolBatch(b) => {
                assert_eq!(b.tasks, 20);
                assert_eq!(b.executed.len(), b.jobs);
                assert_eq!(b.executed.iter().sum::<u64>(), 20);
            }
            other => panic!("expected a pool-batch event, got {other:?}"),
        }
    }

    #[test]
    fn effective_jobs_prefers_explicit_request() {
        assert_eq!(effective_jobs(Some(3)), Ok(3));
        assert_eq!(effective_jobs(Some(0)), Ok(1));
    }

    // The sole test driving the process-global drain flag in this
    // process; `ordered_map` (used by every other test) ignores it.
    #[test]
    fn drain_stops_dispatch_and_returns_the_completed_prefix() {
        reset_drain();
        // Serial: drain before the batch → nothing runs.
        request_drain();
        match Pool::new(1).ordered_map_drain(vec![1u64, 2, 3], |_, x| x) {
            BatchResult::Drained { partial, completed } => {
                assert_eq!(completed, 0);
                assert_eq!(partial, vec![None, None, None]);
            }
            BatchResult::Complete(_) => panic!("a pre-drained batch must not complete"),
        }
        reset_drain();
        // No drain → identical to ordered_map, parallel and serial.
        for jobs in [1, 4] {
            match Pool::new(jobs).ordered_map_drain((0..10u64).collect(), |_, x| x * 2) {
                BatchResult::Complete(out) => {
                    assert_eq!(out, (0..10u64).map(|x| x * 2).collect::<Vec<_>>())
                }
                BatchResult::Drained { .. } => panic!("undrained batch must complete"),
            }
        }
        // Parallel: a task trips the drain mid-batch; the batch ends with
        // a completed prefix and no hang.
        match Pool::new(2).ordered_map_drain((0..64u64).collect(), |i, x| {
            if i == 5 {
                request_drain();
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            x
        }) {
            BatchResult::Drained { partial, completed } => {
                assert!(completed >= 1, "the tripping task itself completes");
                assert!(completed < 64, "drain must stop dispatch early");
                assert_eq!(partial.iter().flatten().count(), completed);
            }
            BatchResult::Complete(_) => panic!("a mid-batch drain must not complete"),
        }
        reset_drain();
    }

    #[test]
    fn gate_bounds_concurrency() {
        use std::sync::atomic::AtomicUsize;
        let gate = Gate::new(2);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let _permit = gate.acquire();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "gate leaked permits");
        // All permits returned: two immediate acquires must not block.
        let a = gate.acquire();
        let b = gate.acquire();
        drop((a, b));
    }

    #[test]
    fn gate_clamps_zero_to_one() {
        let gate = Gate::new(0);
        drop(gate.acquire());
    }

    // One test mutates CAP_JOBS for the whole process, so every scenario
    // lives in this single #[test] to avoid races with its siblings.
    #[test]
    fn cap_jobs_env_is_validated_strictly() {
        std::env::set_var("CAP_JOBS", "5");
        assert_eq!(jobs_from_env(), Ok(Some(5)));
        assert_eq!(effective_jobs(None), Ok(5));
        // An explicit request still wins over the environment.
        assert_eq!(effective_jobs(Some(2)), Ok(2));
        for bad in ["abc", "0", "-3", "1.5", ""] {
            std::env::set_var("CAP_JOBS", bad);
            let err = jobs_from_env().expect_err(bad);
            assert!(err.contains("CAP_JOBS"), "{err}");
            assert!(err.contains(bad) || bad.is_empty(), "{err}");
            assert!(effective_jobs(None).is_err(), "CAP_JOBS={bad}");
        }
        std::env::remove_var("CAP_JOBS");
        assert_eq!(jobs_from_env(), Ok(None));
        assert!(effective_jobs(None).expect("falls back") >= 1);
    }
}
