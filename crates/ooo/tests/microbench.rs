//! Microbenchmark tests: dependence patterns with closed-form IPC, run
//! through the cycle-level core. If any of these drift, the simulator —
//! not the workload calibration — is wrong.

use cap_ooo::config::{CoreConfig, WindowSize};
use cap_ooo::core::OooCore;
use cap_trace::inst::{Inst, InstStream};

/// Replays a fixed pattern of (dep-distance, latency) pairs forever.
struct PatternStream {
    pattern: Vec<(Option<u64>, u32)>,
    next: u64,
}

impl PatternStream {
    fn new(pattern: Vec<(Option<u64>, u32)>) -> Self {
        PatternStream { pattern, next: 0 }
    }
}

impl InstStream for PatternStream {
    fn next_inst(&mut self) -> Inst {
        let seq = self.next;
        self.next += 1;
        let (dist, latency) = self.pattern[(seq as usize) % self.pattern.len()];
        let dep1 = dist.and_then(|d| seq.checked_sub(d)).filter(|_| dist.is_some_and(|d| d <= seq));
        Inst { seq, dep1, dep2: None, latency }
    }
}

fn ipc(core_window: usize, pattern: Vec<(Option<u64>, u32)>, insts: u64) -> f64 {
    let mut core = OooCore::new(CoreConfig::isca98(core_window).unwrap());
    let mut stream = PatternStream::new(pattern);
    core.run(&mut stream, insts).ipc()
}

#[test]
fn pure_serial_chain_each_latency() {
    for lat in 1u32..=4 {
        let measured = ipc(64, vec![(Some(1), lat)], 20_000);
        let expected = 1.0 / f64::from(lat);
        assert!(
            (measured - expected).abs() < 0.01,
            "latency {lat}: measured {measured}, expected {expected}"
        );
    }
}

#[test]
fn independent_stream_is_width_bound() {
    let measured = ipc(64, vec![(None, 1)], 40_000);
    assert!(measured > 7.9, "got {measured}");
    // Long latency doesn't matter when everything is independent and
    // the window covers the latency-bandwidth product (8 wide x 4 deep).
    let measured = ipc(64, vec![(None, 4)], 40_000);
    assert!(measured > 7.8, "got {measured}");
}

#[test]
fn two_interleaved_chains_double_throughput() {
    // Odd/even chains: each instruction depends on seq-2 with latency 2.
    // Steady state: two chains each completing one per 2 cycles = 1 IPC;
    // four interleaved chains at distance 4 = 2 IPC.
    let measured = ipc(64, vec![(Some(2), 2)], 20_000);
    assert!((measured - 1.0).abs() < 0.02, "distance 2: got {measured}");
    let measured = ipc(64, vec![(Some(4), 2)], 20_000);
    assert!((measured - 2.0).abs() < 0.04, "distance 4: got {measured}");
}

#[test]
fn window_gates_long_latency_overlap() {
    // One latency-12 instruction followed by 15 independent: the
    // pattern's critical resource is the window slot held by the slow
    // instruction until commit. With a 16-entry window the machine
    // ping-pongs (commit-blocked); 128 entries overlap many groups.
    let pattern: Vec<(Option<u64>, u32)> =
        std::iter::once((None, 12)).chain(std::iter::repeat_n((None, 1), 15)).collect();
    let small = ipc(16, pattern.clone(), 20_000);
    let large = ipc(128, pattern, 40_000);
    assert!(large > small * 1.5, "16-entry {small} vs 128-entry {large}");
    assert!(large > 7.0, "a big window fully hides the latency, got {large}");
}

#[test]
fn commit_width_caps_throughput() {
    // Independent unit-latency instructions on a narrow-commit machine.
    let mut config = CoreConfig::isca98(64).unwrap();
    config.commit_width = 2;
    let mut core = OooCore::new(config);
    let mut stream = PatternStream::new(vec![(None, 1)]);
    let measured = core.run(&mut stream, 20_000).ipc();
    assert!((measured - 2.0).abs() < 0.05, "got {measured}");
}

#[test]
fn issue_width_caps_throughput() {
    let mut config = CoreConfig::isca98(64).unwrap();
    config.issue_width = 3;
    let mut core = OooCore::new(config);
    let mut stream = PatternStream::new(vec![(None, 1)]);
    let measured = core.run(&mut stream, 20_000).ipc();
    assert!((measured - 3.0).abs() < 0.05, "got {measured}");
}

#[test]
fn fetch_width_caps_throughput() {
    let mut config = CoreConfig::isca98(64).unwrap();
    config.fetch_width = 5;
    let mut core = OooCore::new(config);
    let mut stream = PatternStream::new(vec![(None, 1)]);
    let measured = core.run(&mut stream, 20_000).ipc();
    assert!((measured - 5.0).abs() < 0.05, "got {measured}");
}

#[test]
fn dependent_pairs_halve_width_bound() {
    // inst 2i independent; inst 2i+1 depends on 2i (latency 1). Dataflow
    // allows 8 IPC only if pairs issue in consecutive cycles; steady
    // state is width-bound at 8 with perfect back-to-back wakeup.
    let measured = ipc(64, vec![(None, 1), (Some(1), 1)], 40_000);
    assert!(measured > 7.5, "back-to-back dependent issue must sustain width: {measured}");
}

#[test]
fn resize_mid_pattern_keeps_correctness() {
    let mut core = OooCore::new(CoreConfig::isca98(128).unwrap());
    let mut stream = PatternStream::new(vec![(Some(1), 2)]);
    let _ = core.run(&mut stream, 5_000);
    core.request_resize(WindowSize::new(16).unwrap()).unwrap();
    let stats = core.run(&mut stream, 5_000);
    // A serial latency-2 chain runs at 0.5 IPC regardless of window.
    assert!((stats.ipc() - 0.5).abs() < 0.02, "got {}", stats.ipc());
    assert!(core.active_window() == 16 && !core.resize_pending());
}
