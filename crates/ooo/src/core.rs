//! The cycle-level out-of-order engine.
//!
//! A unified RUU-style window models dispatch, wakeup, select, execute and
//! in-order commit. Each cycle, in order:
//!
//! 1. **commit** — up to `commit_width` completed instructions retire from
//!    the window head, in program order;
//! 2. **wakeup + select + issue** — the oldest `issue_width` ready
//!    instructions begin execution (oldest-first selection, matching the
//!    priority-encoder tree whose delay the timing model charges). An
//!    instruction is ready when both producers have completed; a producer
//!    completing in cycle `t + latency` can feed a consumer issuing that
//!    same cycle, giving back-to-back issue of dependent single-cycle
//!    instructions — the property the atomic wakeup+select loop exists to
//!    provide;
//! 3. **dispatch** — up to `fetch_width` new instructions enter the window
//!    if entries are free (perfect frontend: the stream never starves).
//!
//! Progress is guaranteed: the window head's producers are always already
//! committed, so the head is always issuable.
//!
//! # Wakeup bookkeeping
//!
//! Readiness is tracked *incrementally* rather than by scanning the whole
//! window every cycle: each entry counts its outstanding producers, a
//! producer's issue schedules completion wakeups for its registered
//! consumers, and entries whose count reaches zero enter an oldest-first
//! ready queue. Per-cycle work is proportional to the instructions that
//! actually commit, issue, complete or dispatch — not to window
//! occupancy — which is what makes large-window sweeps affordable. The
//! schedule is provably identical to the naive full scan (an instruction
//! issued this cycle completes no earlier than the next, so readiness
//! never changes mid-cycle); [`crate::reference::ScanCore`] keeps the
//! scan implementation alive and `cap-verify` diffs the two at scale.

use crate::config::{CoreConfig, WindowSize};
use crate::error::OooError;
use cap_trace::inst::{Inst, InstStream};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const NOT_ISSUED: u64 = u64::MAX;

/// Sentinel terminating an entry's intrusive waiter list.
const NO_WAITER: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Entry {
    inst: Inst,
    /// Cycle at which the result becomes available; `NOT_ISSUED` before
    /// issue.
    done_cycle: u64,
    /// Producers not yet known complete. Zero means issuable.
    outstanding: u32,
    /// Head of the intrusive list of consumers to wake when this entry
    /// issues: `(consumer seq << 1) | dep slot`, or [`NO_WAITER`].
    /// Consumers register only while the producer is un-issued; at issue
    /// the list is walked into the completion calendar. Intrusive links
    /// keep registration allocation-free — the hot path of every
    /// dependent dispatch.
    waiter_head: u64,
    /// The continuation of the producer's waiter list this entry sits in,
    /// one link per dependence slot.
    next_waiter: [u64; 2],
}

/// The completion calendar: a ring of buckets indexed by cycle. Latencies
/// are small, so scheduling and draining are O(1) per event — no heap.
#[derive(Debug, Clone, Default)]
struct Calendar {
    /// `buckets[t % len]` holds the wakeups for cycle `t`; the ring is
    /// kept longer than the largest in-flight latency, so slots never
    /// collide.
    buckets: Vec<Vec<(u64, u64)>>,
    scratch: Vec<(u64, u64)>,
}

impl Calendar {
    fn with_capacity(horizon: usize) -> Self {
        Calendar { buckets: vec![Vec::new(); horizon.max(2)], scratch: Vec::new() }
    }

    /// Schedules consumer `seq` to wake at cycle `t` (`t >= now`).
    fn schedule(&mut self, now: u64, t: u64, seq: u64) {
        let needed = (t - now) as usize + 1;
        if needed > self.buckets.len() {
            self.grow(needed.next_power_of_two());
        }
        let len = self.buckets.len() as u64;
        self.buckets[(t % len) as usize].push((t, seq));
    }

    /// Extends the ring, re-binning in-flight events.
    fn grow(&mut self, new_len: usize) {
        let old = std::mem::replace(&mut self.buckets, vec![Vec::new(); new_len]);
        let len = new_len as u64;
        for bucket in old {
            for (t, seq) in bucket {
                self.buckets[(t % len) as usize].push((t, seq));
            }
        }
    }

    /// Takes every wakeup scheduled for cycle `now`. The bucket is
    /// swapped out through a scratch buffer so a latency-zero reschedule
    /// during processing lands in the (empty) live bucket, not the batch
    /// being iterated; return the batch via [`Calendar::put_back`] so its
    /// capacity is reused.
    fn take_bucket(&mut self, now: u64) -> Vec<(u64, u64)> {
        let len = self.buckets.len() as u64;
        let bucket = &mut self.buckets[(now % len) as usize];
        std::mem::swap(bucket, &mut self.scratch);
        std::mem::take(&mut self.scratch)
    }

    fn put_back(&mut self, mut batch: Vec<(u64, u64)>) {
        batch.clear();
        self.scratch = batch;
    }

    fn has_events_at(&self, now: u64) -> bool {
        let len = self.buckets.len() as u64;
        !self.buckets[(now % len) as usize].is_empty()
    }
}

/// Aggregate results of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Cycles elapsed.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// The out-of-order core.
///
/// See the [crate documentation](crate) for the modelling assumptions.
#[derive(Debug, Clone)]
pub struct OooCore {
    config: CoreConfig,
    active_window: usize,
    pending_shrink: Option<usize>,
    window: VecDeque<Entry>,
    /// Un-issued entries with no outstanding producers, oldest first.
    ready: BinaryHeap<Reverse<u64>>,
    /// Completion calendar of `(cycle, consumer seq)` wakeups.
    wakeups: Calendar,
    cycle: u64,
    committed: u64,
    next_seq: Option<u64>,
}

impl OooCore {
    /// Creates a core. The configured window is the *physical* size: the
    /// entries that exist in hardware, which is both the initial active
    /// size and the largest size [`OooCore::request_resize`] accepts.
    ///
    /// # Errors
    ///
    /// Returns [`OooError::InvalidWidth`] if the configuration fails
    /// [`CoreConfig::validate`].
    pub fn try_new(config: CoreConfig) -> Result<Self, OooError> {
        config.validate()?;
        Ok(OooCore {
            config,
            active_window: config.window.entries(),
            pending_shrink: None,
            window: VecDeque::with_capacity(config.window.entries()),
            ready: BinaryHeap::new(),
            wakeups: Calendar::with_capacity(16),
            cycle: 0,
            committed: 0,
            next_seq: None,
        })
    }

    /// Creates a core, panicking on an invalid configuration — a
    /// convenience wrapper over [`OooCore::try_new`] for the common case
    /// of a configuration produced by [`CoreConfig::isca98`], which is
    /// already validated.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn new(config: CoreConfig) -> Self {
        Self::try_new(config).expect("invalid core configuration")
    }

    /// The static configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The number of currently active window entries.
    pub fn active_window(&self) -> usize {
        self.active_window
    }

    /// Whether a shrink is still draining.
    pub fn resize_pending(&self) -> bool {
        self.pending_shrink.is_some()
    }

    /// Cycles elapsed since construction.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Instructions committed since construction.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Current window occupancy.
    pub fn occupancy(&self) -> usize {
        self.window.len()
    }

    /// Requests a window reconfiguration. Growth takes effect
    /// immediately; a shrink stalls dispatch until the entries beyond the
    /// new size have drained (paper §5.1), then takes effect — if the
    /// window is already within the new size, it takes effect at once.
    /// A newer request supersedes a still-draining shrink.
    ///
    /// # Errors
    ///
    /// Returns [`OooError::InvalidWindow`] if `new` exceeds the physical
    /// window the core was built with (`config().window`) — the adaptive
    /// structure can disable fabricated entries, never add ones that do
    /// not exist. The core's state is unchanged on error.
    pub fn request_resize(&mut self, new: WindowSize) -> Result<(), OooError> {
        let n = new.entries();
        if n > self.config.window.entries() {
            return Err(OooError::InvalidWindow { entries: n });
        }
        if n >= self.active_window || self.window.len() <= n {
            self.active_window = n;
            self.pending_shrink = None;
        } else {
            self.pending_shrink = Some(n);
        }
        Ok(())
    }

    fn index_of(&self, seq: u64) -> usize {
        let front = self.window.front().expect("windowed seq implies non-empty window");
        (seq - front.inst.seq) as usize
    }

    /// Delivers every completion scheduled for `now`: the registered
    /// consumer loses one outstanding producer and becomes ready when
    /// none remain.
    fn drain_wakeups(&mut self, now: u64) {
        if !self.wakeups.has_events_at(now) {
            return;
        }
        let batch = self.wakeups.take_bucket(now);
        for &(t, seq) in &batch {
            debug_assert_eq!(t, now, "calendar slot holds only its own cycle");
            let idx = self.index_of(seq);
            let e = &mut self.window[idx];
            e.outstanding -= 1;
            if e.outstanding == 0 {
                self.ready.push(Reverse(seq));
            }
        }
        self.wakeups.put_back(batch);
    }

    /// Advances the machine one cycle, dispatching from `stream` as window
    /// space allows. Returns the number of instructions committed this
    /// cycle.
    pub fn step<S: InstStream>(&mut self, stream: &mut S) -> usize {
        self.cycle += 1;
        let now = self.cycle;

        // 0. Deliver completions scheduled for this cycle: producers
        // finishing now make their registered consumers ready.
        self.drain_wakeups(now);

        // 1. Commit.
        let mut retired = 0;
        while retired < self.config.commit_width {
            match self.window.front() {
                Some(e) if e.done_cycle != NOT_ISSUED && e.done_cycle <= now => {
                    self.window.pop_front();
                    self.committed += 1;
                    retired += 1;
                }
                _ => break,
            }
        }

        // 2. Wakeup + select + issue, oldest first. Everything issuable
        // this cycle is already in the ready queue: an instruction issued
        // now completes next cycle at the earliest, so no entry becomes
        // ready mid-phase.
        let mut issued = 0;
        while issued < self.config.issue_width {
            let Some(&Reverse(seq)) = self.ready.peek() else { break };
            self.ready.pop();
            let front_seq = self.window.front().expect("ready entry is windowed").inst.seq;
            let idx = (seq - front_seq) as usize;
            let done = now + u64::from(self.window[idx].inst.latency);
            self.window[idx].done_cycle = done;
            // Walk the waiter list into the completion calendar.
            let mut cur = std::mem::replace(&mut self.window[idx].waiter_head, NO_WAITER);
            while cur != NO_WAITER {
                let (cseq, slot) = (cur >> 1, (cur & 1) as usize);
                let cidx = (cseq - front_seq) as usize;
                cur = self.window[cidx].next_waiter[slot];
                self.wakeups.schedule(now, done, cseq);
            }
            // Instructions carry latency >= 1, so `done > now` and this is
            // a no-op; it keeps the schedule identical to the full scan
            // even for hand-built zero-latency instructions, where a
            // consumer may chain in the same cycle.
            if done <= now {
                self.drain_wakeups(now);
            }
            issued += 1;
        }

        // 3. Apply a drained shrink, then dispatch.
        if let Some(n) = self.pending_shrink {
            if self.window.len() <= n {
                self.active_window = n;
                self.pending_shrink = None;
            }
        }
        if self.pending_shrink.is_none() {
            let mut fetched = 0;
            while fetched < self.config.fetch_width && self.window.len() < self.active_window {
                let inst = stream.next_inst();
                if let Some(expect) = self.next_seq {
                    assert_eq!(inst.seq, expect, "instruction stream must be contiguous");
                }
                self.next_seq = Some(inst.seq + 1);
                let mut outstanding = 0;
                let mut next_waiter = [NO_WAITER; 2];
                let front_seq = self.window.front().map(|e| e.inst.seq);
                for (slot, dep) in inst.deps().enumerate() {
                    let Some(front) = front_seq else { continue };
                    if dep < front {
                        continue; // producer already committed
                    }
                    let idx = (dep - front) as usize;
                    let p = &mut self.window[idx];
                    if p.done_cycle == NOT_ISSUED {
                        // Splice into the producer's waiter list.
                        next_waiter[slot] = p.waiter_head;
                        p.waiter_head = (inst.seq << 1) | slot as u64;
                        outstanding += 1;
                    } else if p.done_cycle > now {
                        let done = p.done_cycle;
                        self.wakeups.schedule(now, done, inst.seq);
                        outstanding += 1;
                    }
                }
                self.window.push_back(Entry {
                    inst,
                    done_cycle: NOT_ISSUED,
                    outstanding,
                    waiter_head: NO_WAITER,
                    next_waiter,
                });
                if outstanding == 0 {
                    self.ready.push(Reverse(inst.seq));
                }
                fetched += 1;
            }
        }

        retired
    }

    /// Runs until at least `insts` further instructions have committed,
    /// returning the cycles and instructions of exactly that span. Because
    /// commit retires up to `commit_width` instructions per cycle, the
    /// span may overshoot the target by up to `commit_width - 1`.
    pub fn run<S: InstStream>(&mut self, stream: &mut S, insts: u64) -> RunStats {
        let c0 = self.cycle;
        let i0 = self.committed;
        let target = i0 + insts;
        while self.committed < target {
            self.step(stream);
        }
        RunStats { cycles: self.cycle - c0, committed: self.committed - i0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ScanCore;
    use cap_trace::inst::{IlpParams, SegmentIlp};

    /// A fixed list of instructions, then independent filler.
    struct ListStream {
        list: Vec<Inst>,
        next: u64,
    }

    impl ListStream {
        fn new(list: Vec<Inst>) -> Self {
            ListStream { list, next: 0 }
        }
    }

    impl InstStream for ListStream {
        fn next_inst(&mut self) -> Inst {
            let seq = self.next;
            self.next += 1;
            self.list.get(seq as usize).copied().unwrap_or(Inst::independent(seq))
        }
    }

    fn chain(n: u64, latency: u32) -> Vec<Inst> {
        (0..n)
            .map(|i| Inst { seq: i, dep1: if i > 0 { Some(i - 1) } else { None }, dep2: None, latency })
            .collect()
    }

    #[test]
    fn independent_stream_saturates_width() {
        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = ListStream::new(vec![]);
        let stats = core.run(&mut s, 80_000);
        let ipc = stats.ipc();
        assert!(ipc > 7.8 && ipc <= 8.0, "got {ipc}");
    }

    #[test]
    fn serial_chain_runs_at_one_over_latency() {
        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = ListStream::new(chain(200_000, 1));
        let stats = core.run(&mut s, 50_000);
        let ipc = stats.ipc();
        assert!((ipc - 1.0).abs() < 0.01, "unit-latency chain must run at 1 IPC, got {ipc}");

        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = ListStream::new(chain(200_000, 3));
        let ipc = core.run(&mut s, 30_000).ipc();
        assert!((ipc - 1.0 / 3.0).abs() < 0.01, "latency-3 chain must run at 1/3 IPC, got {ipc}");
    }

    #[test]
    fn ipc_never_exceeds_width() {
        let mut core = OooCore::new(CoreConfig::isca98(128).unwrap());
        let mut s = SegmentIlp::new(IlpParams::balanced(), 3).unwrap();
        let ipc = core.run(&mut s, 50_000).ipc();
        assert!(ipc <= 8.0 + 1e-12);
    }

    #[test]
    fn bigger_window_never_hurts_ipc() {
        let mut params = IlpParams::balanced();
        params.cross_dep_prob = 0.05;
        let mut prev = 0.0;
        for w in [16usize, 32, 64, 128] {
            let mut core = OooCore::new(CoreConfig::isca98(w).unwrap());
            let mut s = SegmentIlp::new(params, 7).unwrap();
            let ipc = core.run(&mut s, 60_000).ipc();
            assert!(ipc >= prev - 0.02, "window {w}: {ipc} < {prev}");
            prev = ipc;
        }
        assert!(prev > 4.0, "a mostly parallel stream should reach high IPC, got {prev}");
    }

    #[test]
    fn window_limits_overlap() {
        // Segments of ~32 instructions with independent chains: a 16-entry
        // window cannot overlap two segments, a 128-entry window can.
        let params = IlpParams {
            chain_len: 16,
            burst_len: 16,
            chain_latency: 2,
            burst_latency: 1,
            cross_dep_prob: 0.0,
            burst_chain_len: 8,
            far_dep_prob: 0.0,
            jitter: 0.0,
        };
        let run = |w: usize| {
            let mut core = OooCore::new(CoreConfig::isca98(w).unwrap());
            let mut s = SegmentIlp::new(params, 11).unwrap();
            core.run(&mut s, 60_000).ipc()
        };
        let small = run(16);
        let large = run(128);
        assert!(large > small * 1.8, "16-entry {small} vs 128-entry {large}");
    }

    #[test]
    fn grow_is_immediate_shrink_drains() {
        // Physical window 128: start small, grow within the physical
        // range, then shrink and watch the drain.
        let mut core = OooCore::new(CoreConfig::isca98(128).unwrap());
        core.request_resize(WindowSize::new(32).unwrap()).unwrap();
        assert_eq!(core.active_window(), 32, "empty window shrinks at once");
        assert!(!core.resize_pending());
        core.request_resize(WindowSize::new(128).unwrap()).unwrap();
        assert_eq!(core.active_window(), 128);
        assert!(!core.resize_pending());

        // Fill the window with a slow chain, then shrink.
        let mut s = ListStream::new(chain(1_000_000, 4));
        for _ in 0..40 {
            core.step(&mut s);
        }
        assert!(core.occupancy() > 16);
        core.request_resize(WindowSize::new(16).unwrap()).unwrap();
        assert!(core.resize_pending());
        assert_eq!(core.active_window(), 128, "old size active until drained");
        while core.resize_pending() {
            core.step(&mut s);
        }
        assert_eq!(core.active_window(), 16);
        assert!(core.occupancy() <= 16);
        // And the machine keeps committing afterwards.
        let stats = core.run(&mut s, 1000);
        assert_eq!(stats.committed, 1000);
    }

    #[test]
    fn resize_beyond_physical_window_rejected() {
        // The docs promised OooError::InvalidWindow; the body used to be
        // infallible. Regression: growing past the fabricated entries
        // must fail and leave the core untouched.
        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let err = core.request_resize(WindowSize::new(128).unwrap()).unwrap_err();
        assert_eq!(err, OooError::InvalidWindow { entries: 128 });
        assert_eq!(core.active_window(), 64);
        assert!(!core.resize_pending());
        // The physical maximum itself is legal.
        core.request_resize(WindowSize::new(64).unwrap()).unwrap();
        assert_eq!(core.active_window(), 64);
    }

    #[test]
    fn grow_during_pending_shrink_cancels_it() {
        let mut core = OooCore::new(CoreConfig::isca98(128).unwrap());
        let mut s = ListStream::new(chain(1_000_000, 4));
        for _ in 0..40 {
            core.step(&mut s);
        }
        assert!(core.occupancy() > 64);
        core.request_resize(WindowSize::new(16).unwrap()).unwrap();
        assert!(core.resize_pending());
        // Growing back (to anything >= the still-active size) cancels the
        // drain; dispatch resumes immediately.
        core.request_resize(WindowSize::new(128).unwrap()).unwrap();
        assert!(!core.resize_pending());
        assert_eq!(core.active_window(), 128);
        // A *smaller* target during a drain supersedes the old one.
        core.request_resize(WindowSize::new(16).unwrap()).unwrap();
        core.request_resize(WindowSize::new(64).unwrap()).unwrap();
        assert!(core.resize_pending(), "occupancy still above 64");
        while core.resize_pending() {
            core.step(&mut s);
        }
        assert_eq!(core.active_window(), 64, "latest request wins");
        // An invalid request during a drain changes nothing.
        core.request_resize(WindowSize::new(16).unwrap()).unwrap();
        let before = core.active_window();
        assert!(core.request_resize(WindowSize::new(256).unwrap()).is_err());
        assert_eq!(core.active_window(), before);
        assert!(core.resize_pending());
    }

    #[test]
    fn try_new_rejects_zero_widths() {
        let mut c = CoreConfig::isca98(64).unwrap();
        c.issue_width = 0;
        assert_eq!(OooCore::try_new(c).unwrap_err(), OooError::InvalidWidth { what: "issue" });
        assert!(OooCore::try_new(CoreConfig::isca98(64).unwrap()).is_ok());
    }

    #[test]
    fn back_to_back_dependent_issue() {
        // A unit-latency chain of W instructions must take ~W cycles, not
        // ~2W: wakeup+select turnaround is a single cycle.
        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = ListStream::new(chain(10_000, 1));
        let stats = core.run(&mut s, 5_000);
        assert!(stats.cycles <= 5_010, "took {} cycles", stats.cycles);
    }

    #[test]
    fn run_counts_are_deltas() {
        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = ListStream::new(vec![]);
        let a = core.run(&mut s, 1000);
        let b = core.run(&mut s, 500);
        assert!((1000..1008).contains(&a.committed));
        assert!((500..508).contains(&b.committed));
        assert!(core.committed() >= 1500);
    }

    #[test]
    fn occupancy_bounded_by_active_window() {
        let mut core = OooCore::new(CoreConfig::isca98(16).unwrap());
        let mut s = ListStream::new(chain(100_000, 8));
        for _ in 0..200 {
            core.step(&mut s);
            assert!(core.occupancy() <= 16);
        }
    }

    #[test]
    fn matches_reference_scan_core_cycle_for_cycle() {
        // The incremental-wakeup engine against the naive full-scan
        // reference, compared at every step over diverse dependence
        // structures (cap-verify fuzzes the same pairing at scale).
        let mut cases: Vec<(IlpParams, u64)> = Vec::new();
        for seed in 0..4u64 {
            cases.push((IlpParams::balanced(), seed));
        }
        let mut serial = IlpParams::balanced();
        serial.cross_dep_prob = 1.0;
        serial.burst_chain_len = 1;
        cases.push((serial, 5));
        let mut sparse = IlpParams::balanced();
        sparse.cross_dep_prob = 0.0;
        sparse.far_dep_prob = 0.5;
        cases.push((sparse, 6));
        for (params, seed) in cases {
            for w in [16usize, 48, 128] {
                let mut fast = OooCore::new(CoreConfig::isca98(w).unwrap());
                let mut slow = ScanCore::new(CoreConfig::isca98(w).unwrap());
                let mut s1 = SegmentIlp::new(params, seed).unwrap();
                let mut s2 = SegmentIlp::new(params, seed).unwrap();
                for step in 0..3000 {
                    let a = fast.step(&mut s1);
                    let b = slow.step(&mut s2);
                    assert_eq!(a, b, "retire count diverged at step {step} (w={w}, seed={seed})");
                    assert_eq!(fast.committed(), slow.committed());
                    assert_eq!(fast.occupancy(), slow.occupancy());
                }
            }
        }
    }

    #[test]
    fn matches_reference_across_resizes() {
        let mut fast = OooCore::new(CoreConfig::isca98(128).unwrap());
        let mut slow = ScanCore::new(CoreConfig::isca98(128).unwrap());
        let mut s1 = SegmentIlp::new(IlpParams::balanced(), 9).unwrap();
        let mut s2 = SegmentIlp::new(IlpParams::balanced(), 9).unwrap();
        let sizes = [16usize, 128, 64, 32, 128, 48];
        for (round, &n) in sizes.iter().enumerate() {
            let w = WindowSize::new(n).unwrap();
            fast.request_resize(w).unwrap();
            slow.request_resize(w).unwrap();
            assert_eq!(fast.active_window(), slow.active_window(), "round {round}");
            assert_eq!(fast.resize_pending(), slow.resize_pending(), "round {round}");
            for _ in 0..500 {
                assert_eq!(fast.step(&mut s1), slow.step(&mut s2));
            }
            assert_eq!(fast.cycles(), slow.cycles());
            assert_eq!(fast.committed(), slow.committed());
        }
    }

    #[test]
    fn empty_stats_ipc_is_zero() {
        assert_eq!(RunStats::default().ipc(), 0.0);
    }
}
