//! The cycle-level out-of-order engine.
//!
//! A unified RUU-style window models dispatch, wakeup, select, execute and
//! in-order commit. Each cycle, in order:
//!
//! 1. **commit** — up to `commit_width` completed instructions retire from
//!    the window head, in program order;
//! 2. **wakeup + select + issue** — the oldest `issue_width` ready
//!    instructions begin execution (oldest-first selection, matching the
//!    priority-encoder tree whose delay the timing model charges). An
//!    instruction is ready when both producers have completed; a producer
//!    completing in cycle `t + latency` can feed a consumer issuing that
//!    same cycle, giving back-to-back issue of dependent single-cycle
//!    instructions — the property the atomic wakeup+select loop exists to
//!    provide;
//! 3. **dispatch** — up to `fetch_width` new instructions enter the window
//!    if entries are free (perfect frontend: the stream never starves).
//!
//! Progress is guaranteed: the window head's producers are always already
//! committed, so the head is always issuable.

use crate::config::{CoreConfig, WindowSize};
use crate::error::OooError;
use cap_trace::inst::{Inst, InstStream};
use std::collections::VecDeque;

const NOT_ISSUED: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Entry {
    inst: Inst,
    dispatch_cycle: u64,
    /// Cycle at which the result becomes available; `NOT_ISSUED` before
    /// issue.
    done_cycle: u64,
}

/// Aggregate results of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Cycles elapsed.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// The out-of-order core.
///
/// See the [crate documentation](crate) for the modelling assumptions.
#[derive(Debug, Clone)]
pub struct OooCore {
    config: CoreConfig,
    active_window: usize,
    pending_shrink: Option<usize>,
    window: VecDeque<Entry>,
    cycle: u64,
    committed: u64,
    next_seq: Option<u64>,
}

impl OooCore {
    /// Creates a core.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn new(config: CoreConfig) -> Self {
        config.validate().expect("invalid core configuration");
        OooCore {
            config,
            active_window: config.window.entries(),
            pending_shrink: None,
            window: VecDeque::with_capacity(config.window.entries()),
            cycle: 0,
            committed: 0,
            next_seq: None,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The number of currently active window entries.
    pub fn active_window(&self) -> usize {
        self.active_window
    }

    /// Whether a shrink is still draining.
    pub fn resize_pending(&self) -> bool {
        self.pending_shrink.is_some()
    }

    /// Cycles elapsed since construction.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Instructions committed since construction.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Current window occupancy.
    pub fn occupancy(&self) -> usize {
        self.window.len()
    }

    /// Requests a window reconfiguration. Growth takes effect immediately;
    /// a shrink stalls dispatch until the entries beyond the new size have
    /// drained (paper §5.1), then takes effect.
    ///
    /// # Errors
    ///
    /// Returns [`OooError::InvalidWindow`] if `new` is invalid.
    pub fn request_resize(&mut self, new: WindowSize) -> Result<(), OooError> {
        let n = new.entries();
        if n >= self.active_window {
            self.active_window = n;
            self.pending_shrink = None;
        } else {
            self.pending_shrink = Some(n);
        }
        Ok(())
    }

    fn producer_done(&self, dep: u64, now: u64) -> bool {
        match self.window.front() {
            None => true,
            Some(front) if dep < front.inst.seq => true,
            Some(front) => {
                let idx = (dep - front.inst.seq) as usize;
                // Producers always precede consumers, so the index is in
                // range for any dep of a windowed instruction.
                self.window[idx].done_cycle <= now
            }
        }
    }

    fn ready(&self, e: &Entry, now: u64) -> bool {
        e.done_cycle == NOT_ISSUED
            && e.dispatch_cycle < now
            && e.inst.deps().all(|d| self.producer_done(d, now))
    }

    /// Advances the machine one cycle, dispatching from `stream` as window
    /// space allows. Returns the number of instructions committed this
    /// cycle.
    pub fn step<S: InstStream>(&mut self, stream: &mut S) -> usize {
        self.cycle += 1;
        let now = self.cycle;

        // 1. Commit.
        let mut retired = 0;
        while retired < self.config.commit_width {
            match self.window.front() {
                Some(e) if e.done_cycle != NOT_ISSUED && e.done_cycle <= now => {
                    self.window.pop_front();
                    self.committed += 1;
                    retired += 1;
                }
                _ => break,
            }
        }

        // 2. Wakeup + select + issue, oldest first.
        let mut issued = 0;
        for i in 0..self.window.len() {
            if issued == self.config.issue_width {
                break;
            }
            let e = self.window[i];
            if e.done_cycle == NOT_ISSUED && self.ready(&e, now) {
                self.window[i].done_cycle = now + u64::from(e.inst.latency);
                issued += 1;
            }
        }

        // 3. Apply a drained shrink, then dispatch.
        if let Some(n) = self.pending_shrink {
            if self.window.len() <= n {
                self.active_window = n;
                self.pending_shrink = None;
            }
        }
        if self.pending_shrink.is_none() {
            let mut fetched = 0;
            while fetched < self.config.fetch_width && self.window.len() < self.active_window {
                let inst = stream.next_inst();
                if let Some(expect) = self.next_seq {
                    assert_eq!(inst.seq, expect, "instruction stream must be contiguous");
                }
                self.next_seq = Some(inst.seq + 1);
                self.window.push_back(Entry { inst, dispatch_cycle: now, done_cycle: NOT_ISSUED });
                fetched += 1;
            }
        }

        retired
    }

    /// Runs until at least `insts` further instructions have committed,
    /// returning the cycles and instructions of exactly that span. Because
    /// commit retires up to `commit_width` instructions per cycle, the
    /// span may overshoot the target by up to `commit_width - 1`.
    pub fn run<S: InstStream>(&mut self, stream: &mut S, insts: u64) -> RunStats {
        let c0 = self.cycle;
        let i0 = self.committed;
        let target = i0 + insts;
        while self.committed < target {
            self.step(stream);
        }
        RunStats { cycles: self.cycle - c0, committed: self.committed - i0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_trace::inst::{IlpParams, SegmentIlp};

    /// A fixed list of instructions, then independent filler.
    struct ListStream {
        list: Vec<Inst>,
        next: u64,
    }

    impl ListStream {
        fn new(list: Vec<Inst>) -> Self {
            ListStream { list, next: 0 }
        }
    }

    impl InstStream for ListStream {
        fn next_inst(&mut self) -> Inst {
            let seq = self.next;
            self.next += 1;
            self.list.get(seq as usize).copied().unwrap_or(Inst::independent(seq))
        }
    }

    fn chain(n: u64, latency: u32) -> Vec<Inst> {
        (0..n)
            .map(|i| Inst { seq: i, dep1: if i > 0 { Some(i - 1) } else { None }, dep2: None, latency })
            .collect()
    }

    #[test]
    fn independent_stream_saturates_width() {
        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = ListStream::new(vec![]);
        let stats = core.run(&mut s, 80_000);
        let ipc = stats.ipc();
        assert!(ipc > 7.8 && ipc <= 8.0, "got {ipc}");
    }

    #[test]
    fn serial_chain_runs_at_one_over_latency() {
        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = ListStream::new(chain(200_000, 1));
        let stats = core.run(&mut s, 50_000);
        let ipc = stats.ipc();
        assert!((ipc - 1.0).abs() < 0.01, "unit-latency chain must run at 1 IPC, got {ipc}");

        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = ListStream::new(chain(200_000, 3));
        let ipc = core.run(&mut s, 30_000).ipc();
        assert!((ipc - 1.0 / 3.0).abs() < 0.01, "latency-3 chain must run at 1/3 IPC, got {ipc}");
    }

    #[test]
    fn ipc_never_exceeds_width() {
        let mut core = OooCore::new(CoreConfig::isca98(128).unwrap());
        let mut s = SegmentIlp::new(IlpParams::balanced(), 3).unwrap();
        let ipc = core.run(&mut s, 50_000).ipc();
        assert!(ipc <= 8.0 + 1e-12);
    }

    #[test]
    fn bigger_window_never_hurts_ipc() {
        let mut params = IlpParams::balanced();
        params.cross_dep_prob = 0.05;
        let mut prev = 0.0;
        for w in [16usize, 32, 64, 128] {
            let mut core = OooCore::new(CoreConfig::isca98(w).unwrap());
            let mut s = SegmentIlp::new(params, 7).unwrap();
            let ipc = core.run(&mut s, 60_000).ipc();
            assert!(ipc >= prev - 0.02, "window {w}: {ipc} < {prev}");
            prev = ipc;
        }
        assert!(prev > 4.0, "a mostly parallel stream should reach high IPC, got {prev}");
    }

    #[test]
    fn window_limits_overlap() {
        // Segments of ~32 instructions with independent chains: a 16-entry
        // window cannot overlap two segments, a 128-entry window can.
        let params = IlpParams {
            chain_len: 16,
            burst_len: 16,
            chain_latency: 2,
            burst_latency: 1,
            cross_dep_prob: 0.0,
            burst_chain_len: 8,
            far_dep_prob: 0.0,
            jitter: 0.0,
        };
        let run = |w: usize| {
            let mut core = OooCore::new(CoreConfig::isca98(w).unwrap());
            let mut s = SegmentIlp::new(params, 11).unwrap();
            core.run(&mut s, 60_000).ipc()
        };
        let small = run(16);
        let large = run(128);
        assert!(large > small * 1.8, "16-entry {small} vs 128-entry {large}");
    }

    #[test]
    fn grow_is_immediate_shrink_drains() {
        let mut core = OooCore::new(CoreConfig::isca98(32).unwrap());
        core.request_resize(WindowSize::new(128).unwrap()).unwrap();
        assert_eq!(core.active_window(), 128);
        assert!(!core.resize_pending());

        // Fill the window with a slow chain, then shrink.
        let mut s = ListStream::new(chain(1_000_000, 4));
        for _ in 0..40 {
            core.step(&mut s);
        }
        assert!(core.occupancy() > 16);
        core.request_resize(WindowSize::new(16).unwrap()).unwrap();
        assert!(core.resize_pending());
        assert_eq!(core.active_window(), 128, "old size active until drained");
        while core.resize_pending() {
            core.step(&mut s);
        }
        assert_eq!(core.active_window(), 16);
        assert!(core.occupancy() <= 16);
        // And the machine keeps committing afterwards.
        let stats = core.run(&mut s, 1000);
        assert_eq!(stats.committed, 1000);
    }

    #[test]
    fn back_to_back_dependent_issue() {
        // A unit-latency chain of W instructions must take ~W cycles, not
        // ~2W: wakeup+select turnaround is a single cycle.
        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = ListStream::new(chain(10_000, 1));
        let stats = core.run(&mut s, 5_000);
        assert!(stats.cycles <= 5_010, "took {} cycles", stats.cycles);
    }

    #[test]
    fn run_counts_are_deltas() {
        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = ListStream::new(vec![]);
        let a = core.run(&mut s, 1000);
        let b = core.run(&mut s, 500);
        assert!((1000..1008).contains(&a.committed));
        assert!((500..508).contains(&b.committed));
        assert!(core.committed() >= 1500);
    }

    #[test]
    fn occupancy_bounded_by_active_window() {
        let mut core = OooCore::new(CoreConfig::isca98(16).unwrap());
        let mut s = ListStream::new(chain(100_000, 8));
        for _ in 0..200 {
            core.step(&mut s);
            assert!(core.occupancy() <= 16);
        }
    }

    #[test]
    fn empty_stats_ipc_is_zero() {
        assert_eq!(RunStats::default().ipc(), 0.0);
    }
}
