//! Error type for the out-of-order core.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring the core.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OooError {
    /// An unusable window size was requested: not a positive multiple of
    /// 16 within the modelled range, or larger than the physical window
    /// a core was built with.
    InvalidWindow {
        /// The requested number of entries.
        entries: usize,
    },
    /// A pipeline width was zero.
    InvalidWidth {
        /// Which width was invalid.
        what: &'static str,
    },
    /// An interval recording was requested with a zero interval length.
    ZeroIntervalLength,
}

impl fmt::Display for OooError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OooError::InvalidWindow { entries } => {
                write!(
                    f,
                    "window size {entries} is not usable here (must be a positive multiple of \
                     16 within 16..=256 and at most the core's physical window)"
                )
            }
            OooError::InvalidWidth { what } => write!(f, "pipeline width must be positive: {what}"),
            OooError::ZeroIntervalLength => write!(f, "interval length must be positive"),
        }
    }
}

impl Error for OooError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!OooError::InvalidWindow { entries: 5 }.to_string().is_empty());
        assert!(!OooError::InvalidWidth { what: "fetch" }.to_string().is_empty());
        assert!(OooError::ZeroIntervalLength.to_string().contains("interval length"));
    }
}
