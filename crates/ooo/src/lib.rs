//! Cycle-level 8-way out-of-order core with a complexity-adaptive
//! instruction queue (paper §5.3).
//!
//! The paper models instruction issue with SimpleScalar under strong
//! idealizations — perfect branch prediction, perfect caches, plentiful
//! functional units — so that IPC depends only on the dependence structure
//! of the instruction stream versus the window size. This crate implements
//! that core from scratch:
//!
//! * a unified RUU-style window (dispatch → wakeup → select → execute →
//!   in-order commit), 8-wide at every stage, with **oldest-first
//!   selection** mirroring the priority-encoder tree of the timing model;
//! * a **resizable window**: growth is immediate; shrinking first drains
//!   the entries in the portion to be disabled (paper §5.1: "before we
//!   reconfigure to a smaller queue size, entries in the portion of the
//!   queue to be disabled must first issue");
//! * interval TPI recording for the Section 6 snapshots (Figures 12–13);
//! * a **single-pass window sweep** ([`multisweep`]) that replays one
//!   recorded instruction tape through every window size, and the
//!   preserved full-scan engine ([`reference`]) that pins the fast core's
//!   schedule differentially.
//!
//! The cycle time of each window size comes from
//! [`cap_timing::QueueTimingModel`]; combining it with measured IPC gives
//! the paper's TPI metric (see [`perf`]).
//!
//! # Example
//!
//! ```
//! use cap_ooo::config::CoreConfig;
//! use cap_ooo::core::OooCore;
//! use cap_trace::inst::{IlpParams, SegmentIlp};
//!
//! let mut core = OooCore::new(CoreConfig::isca98(64)?);
//! let mut stream = SegmentIlp::new(IlpParams::balanced(), 1)?;
//! let stats = core.run(&mut stream, 10_000);
//! assert!(stats.ipc() > 1.0 && stats.ipc() <= 8.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpred;
pub mod config;
pub mod core;
pub mod error;
pub mod interval;
pub mod multisweep;
pub mod perf;
pub mod reference;

pub use config::{CoreConfig, WindowSize};
pub use core::{OooCore, RunStats};
pub use error::OooError;
