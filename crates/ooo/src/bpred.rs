//! A complexity-adaptive gshare branch predictor.
//!
//! The paper names branch predictor tables alongside TLBs as prime
//! candidates for complexity adaptivity but leaves them to future work
//! (§7: "as well as other structures such as TLBs and branch
//! predictors"); this module is that extension, built with the same
//! discipline as the evaluated structures:
//!
//! * the pattern history table (PHT) is sized in powers of two from 1 K
//!   to 16 K two-bit counters; shrinking simply masks the index (and
//!   shortens the global history to match), so — like every CAS —
//!   reconfiguration preserves contents;
//! * prediction is on the fetch critical path: the PHT read delay at the
//!   current table size, converted at the machine cycle, gives the
//!   predictor's latency. A multi-cycle predictor costs a fetch bubble
//!   on every *taken* branch (the paper's §3.1 "vary the latency instead
//!   of the clock" option);
//! * a misprediction costs a fixed pipeline refill.
//!
//! Bigger tables alias less (higher accuracy, more IPC); smaller tables
//! predict in a single cycle. [`sweep`] runs the process-level adaptive
//! study over that tradeoff.

use crate::error::OooError;
use cap_timing::units::Ns;
use cap_trace::branch::{BranchEvent, BranchStream};
use std::fmt;

/// Smallest supported PHT, in counters.
pub const MIN_ENTRIES: usize = 1024;

/// Largest supported PHT, in counters.
pub const MAX_ENTRIES: usize = 16 * 1024;

/// Pipeline refill cost of a misprediction, in cycles.
pub const MISPREDICT_PENALTY_CYCLES: u64 = 6;

// PHT read delay at 0.18 um: decode-dominated RAM access,
// base + slope per doubling.
const PHT_BASE_NS: f64 = 0.30;
const PHT_PER_DOUBLING_NS: f64 = 0.045;

/// A validated PHT size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhtConfig(usize);

impl PhtConfig {
    /// Creates a PHT size.
    ///
    /// # Errors
    ///
    /// Returns [`OooError::InvalidWindow`] unless `entries` is a power of
    /// two in `1K..=16K`.
    pub fn new(entries: usize) -> Result<Self, OooError> {
        if !entries.is_power_of_two() || !(MIN_ENTRIES..=MAX_ENTRIES).contains(&entries) {
            return Err(OooError::InvalidWindow { entries });
        }
        Ok(PhtConfig(entries))
    }

    /// The number of two-bit counters.
    pub fn entries(self) -> usize {
        self.0
    }

    /// Global-history bits XORed into the index: a fixed 3, independent
    /// of table size. Keeping the history fixed means every doubling of
    /// the table is spent on separating static branches (less
    /// destructive aliasing) — the capacity effect the adaptive study
    /// trades against lookup delay.
    pub fn history_bits(self) -> u32 {
        3
    }

    /// All supported sizes, ascending (1 K, 2 K, 4 K, 8 K, 16 K).
    pub fn sweep() -> impl Iterator<Item = PhtConfig> {
        (0..5).map(|i| PhtConfig(MIN_ENTRIES << i))
    }

    /// The PHT read delay at this size (0.18 µm constants).
    pub fn read_delay(self) -> Ns {
        Ns(PHT_BASE_NS + PHT_PER_DOUBLING_NS * f64::from(self.0.trailing_zeros()))
    }

    /// Prediction latency in cycles at a given machine cycle time.
    pub fn latency_cycles(self, cycle: Ns) -> u64 {
        (self.read_delay() / cycle).ceil().max(1.0) as u64
    }
}

impl fmt::Display for PhtConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}K-entry PHT", self.0 / 1024)
    }
}

/// The resizable gshare predictor.
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    config: PhtConfig,
    history: u64,
}

impl Gshare {
    /// Creates a predictor with all counters weakly not-taken.
    pub fn new(config: PhtConfig) -> Self {
        Gshare { counters: vec![1; MAX_ENTRIES], config, history: 0 }
    }

    /// The active table size.
    pub fn config(&self) -> PhtConfig {
        self.config
    }

    /// Resizes the active table. Counters are preserved: growing exposes
    /// previously trained state, shrinking masks it (no flush — the CAS
    /// property).
    pub fn set_config(&mut self, config: PhtConfig) {
        self.config = config;
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (self.config.entries() - 1) as u64;
        let hist = self.history & ((1u64 << self.config.history_bits()) - 1);
        (((pc >> 2) ^ hist) & mask) as usize
    }

    /// Predicts the direction of a branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Trains on a resolved branch and returns whether the prediction
    /// was correct.
    pub fn update(&mut self, event: BranchEvent) -> bool {
        let idx = self.index(event.pc);
        let predicted = self.counters[idx] >= 2;
        let c = &mut self.counters[idx];
        if event.taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(event.taken);
        predicted == event.taken
    }
}

/// Result of measuring one PHT size on a branch stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BpredSweepPoint {
    /// The table size measured.
    pub config: PhtConfig,
    /// Fraction of branches predicted correctly.
    pub accuracy: f64,
    /// Fraction of branches that were taken.
    pub taken_ratio: f64,
    /// Prediction latency at the supplied machine cycle.
    pub latency_cycles: u64,
    /// Branch-induced time per instruction (ns).
    pub tpi_ns: f64,
}

/// Measures accuracy and the branch-induced TPI of every PHT size on the
/// same stream (process-level adaptive methodology, applied to the
/// predictor).
///
/// `branch_frac` is the fraction of instructions that are conditional
/// branches; `cycle` the machine cycle time set by the rest of the core.
///
/// # Errors
///
/// Returns [`OooError::InvalidWidth`] if `branch_frac` is outside
/// `(0, 1]` (a zero branch fraction makes the study meaningless).
pub fn sweep<S, F>(
    mut make_stream: F,
    branches: u64,
    cycle: Ns,
    branch_frac: f64,
) -> Result<Vec<BpredSweepPoint>, OooError>
where
    S: BranchStream,
    F: FnMut() -> S,
{
    if !(branch_frac > 0.0 && branch_frac <= 1.0) {
        return Err(OooError::InvalidWidth { what: "branch fraction must be in (0,1]" });
    }
    let mut out = Vec::new();
    for config in PhtConfig::sweep() {
        let mut predictor = Gshare::new(config);
        let mut stream = make_stream();
        let mut correct = 0u64;
        let mut taken = 0u64;
        for _ in 0..branches {
            let e = stream.next_branch();
            if predictor.update(e) {
                correct += 1;
            }
            if e.taken {
                taken += 1;
            }
        }
        let accuracy = correct as f64 / branches as f64;
        let taken_ratio = taken as f64 / branches as f64;
        let latency = config.latency_cycles(cycle);
        // Stall cycles per branch: refill on a miss, plus the fetch
        // bubble of a multi-cycle predictor on every taken branch.
        let stalls = (1.0 - accuracy) * MISPREDICT_PENALTY_CYCLES as f64
            + taken_ratio * (latency - 1) as f64;
        let tpi_ns = cycle.value() * branch_frac * stalls;
        out.push(BpredSweepPoint { config, accuracy, taken_ratio, latency_cycles: latency, tpi_ns });
    }
    Ok(out)
}

/// The sweep point with the lowest branch-induced TPI; ties break toward
/// the smaller table.
pub fn best_point(points: &[BpredSweepPoint]) -> Option<&BpredSweepPoint> {
    points.iter().min_by(|a, b| {
        a.tpi_ns.total_cmp(&b.tpi_ns).then(a.config.cmp(&b.config))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_trace::branch::{BranchBehavior, SyntheticBranches};

    #[test]
    fn config_validation() {
        assert!(PhtConfig::new(0).is_err());
        assert!(PhtConfig::new(512).is_err());
        assert!(PhtConfig::new(3000).is_err());
        assert!(PhtConfig::new(32 * 1024).is_err());
        let c = PhtConfig::new(4096).unwrap();
        assert_eq!(c.history_bits(), 3);
        assert_eq!(PhtConfig::sweep().count(), 5);
        assert_eq!(c.to_string(), "4K-entry PHT");
    }

    #[test]
    fn read_delay_grows_with_size() {
        let sizes: Vec<PhtConfig> = PhtConfig::sweep().collect();
        for w in sizes.windows(2) {
            assert!(w[0].read_delay() < w[1].read_delay());
        }
        // At a 0.8 ns machine cycle the small tables are single-cycle
        // and the largest is not.
        assert_eq!(sizes[0].latency_cycles(Ns(0.8)), 1);
        assert_eq!(sizes[4].latency_cycles(Ns(0.8)), 2);
    }

    #[test]
    fn learns_a_loop_branch_quickly() {
        let mut g = Gshare::new(PhtConfig::new(1024).unwrap());
        let mut stream = SyntheticBranches::builder(1)
            .branch(BranchBehavior::Loop(4), 1.0)
            .build()
            .unwrap();
        // Warm up, then measure.
        for _ in 0..2000 {
            let e = stream.next_branch();
            g.update(e);
        }
        let mut correct = 0;
        for _ in 0..4000 {
            let e = stream.next_branch();
            if g.update(e) {
                correct += 1;
            }
        }
        let acc = correct as f64 / 4000.0;
        assert!(acc > 0.95, "got {acc}");
    }

    #[test]
    fn unbiased_branch_is_unpredictable() {
        let mut g = Gshare::new(PhtConfig::new(16 * 1024).unwrap());
        let mut stream = SyntheticBranches::builder(2)
            .branch(BranchBehavior::Biased(0.5), 1.0)
            .build()
            .unwrap();
        let mut correct = 0;
        for _ in 0..20_000 {
            let e = stream.next_branch();
            if g.update(e) {
                correct += 1;
            }
        }
        let acc = correct as f64 / 20_000.0;
        assert!((0.42..0.58).contains(&acc), "got {acc}");
    }

    #[test]
    fn bigger_tables_reduce_aliasing() {
        // Thousands of well-behaved static branches: a 1K table aliases
        // them destructively, a 16K table separates them.
        let build = || {
            SyntheticBranches::builder(3)
                .branch_group(BranchBehavior::Biased(0.95), 500, 2.0)
                .branch_group(BranchBehavior::Biased(0.05), 500, 2.0)
                .branch_group(BranchBehavior::Loop(6), 150, 1.0)
                .build()
                .unwrap()
        };
        let points = sweep(build, 60_000, Ns(0.8), 0.15).unwrap();
        let small = points.first().unwrap();
        let large = points.last().unwrap();
        assert!(large.accuracy > small.accuracy + 0.03, "{} vs {}", small.accuracy, large.accuracy);
    }

    #[test]
    fn loop_dominated_stream_prefers_small_single_cycle_table() {
        let build = || {
            SyntheticBranches::builder(4)
                .branch_group(BranchBehavior::Loop(10), 30, 1.0)
                .build()
                .unwrap()
        };
        let points = sweep(build, 40_000, Ns(0.8), 0.15).unwrap();
        let best = best_point(&points).unwrap();
        assert!(best.config.entries() <= 8192, "best was {}", best.config);
        assert_eq!(best.latency_cycles, 1, "a loop app never pays the 2-cycle table");
    }

    #[test]
    fn alias_heavy_stream_prefers_large_table_despite_latency() {
        let build = || {
            SyntheticBranches::builder(5)
                .branch_group(BranchBehavior::Biased(0.95), 700, 2.0)
                .branch_group(BranchBehavior::Biased(0.05), 700, 2.0)
                .build()
                .unwrap()
        };
        // At a 0.9 ns machine cycle everything up to 8K is single-cycle:
        // the aliasing relief decides, and the big table wins.
        let points = sweep(build, 80_000, Ns(0.9), 0.2).unwrap();
        let best = best_point(&points).unwrap();
        assert!(best.config.entries() >= 8192, "best was {}", best.config);
        // For this heavily aliased population the accuracy gap dwarfs the
        // fetch-bubble tax, so even at a fast clock where only the 1K
        // table is single-cycle, the big table stays worthwhile — the
        // mirror image of the loop-dominated case below.
        let fast = sweep(build, 80_000, Ns(0.76), 0.2).unwrap();
        let fast_best = best_point(&fast).unwrap();
        assert!(fast_best.accuracy > points[0].accuracy + 0.05);
    }

    #[test]
    fn resize_preserves_training() {
        let mut g = Gshare::new(PhtConfig::new(16 * 1024).unwrap());
        let mut stream = SyntheticBranches::builder(6)
            .branch(BranchBehavior::Loop(4), 1.0)
            .build()
            .unwrap();
        for _ in 0..5000 {
            let e = stream.next_branch();
            g.update(e);
        }
        // Shrink and grow back: state not flushed, accuracy immediately
        // high again at the original size.
        g.set_config(PhtConfig::new(1024).unwrap());
        g.set_config(PhtConfig::new(16 * 1024).unwrap());
        let mut correct = 0;
        for _ in 0..2000 {
            let e = stream.next_branch();
            if g.update(e) {
                correct += 1;
            }
        }
        assert!(correct as f64 / 2000.0 > 0.9);
    }

    #[test]
    fn sweep_validation() {
        let build = || {
            SyntheticBranches::builder(7)
                .branch(BranchBehavior::Loop(4), 1.0)
                .build()
                .unwrap()
        };
        assert!(sweep(build, 100, Ns(0.8), 0.0).is_err());
        assert!(sweep(build, 100, Ns(0.8), 1.5).is_err());
    }
}
