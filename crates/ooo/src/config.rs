//! Core configuration: widths and the adaptive window size.

use crate::error::OooError;
use cap_timing::queue::{ENTRY_INCREMENT, MAX_ENTRIES, PAPER_SIZES};
use std::fmt;

/// A validated instruction-window size: a positive multiple of 16 entries
/// (the configuration increment of the buffered tag lines), at most 256.
///
/// # Example
///
/// ```
/// use cap_ooo::config::WindowSize;
///
/// let w = WindowSize::new(64)?;
/// assert_eq!(w.entries(), 64);
/// assert!(WindowSize::new(40).is_err());
/// # Ok::<(), cap_ooo::OooError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WindowSize(usize);

impl WindowSize {
    /// Creates a window size.
    ///
    /// # Errors
    ///
    /// Returns [`OooError::InvalidWindow`] unless `entries` is a positive
    /// multiple of 16 at most 256.
    pub fn new(entries: usize) -> Result<Self, OooError> {
        if entries == 0 || !entries.is_multiple_of(ENTRY_INCREMENT) || entries > MAX_ENTRIES {
            return Err(OooError::InvalidWindow { entries });
        }
        Ok(WindowSize(entries))
    }

    /// The number of entries.
    #[inline]
    pub fn entries(self) -> usize {
        self.0
    }

    /// The paper's sweep (16–128 entries by 16).
    pub fn paper_sweep() -> impl Iterator<Item = WindowSize> {
        PAPER_SIZES.into_iter().map(WindowSize)
    }

    /// The paper's best conventional configuration (64 entries).
    pub fn best_conventional() -> WindowSize {
        WindowSize(64)
    }
}

impl fmt::Display for WindowSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-entry", self.0)
    }
}

/// Static configuration of the out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions dispatched into the window per cycle.
    pub fetch_width: usize,
    /// Instructions selected for issue per cycle.
    pub issue_width: usize,
    /// Instructions committed (retired in order) per cycle.
    pub commit_width: usize,
    /// Initial window size.
    pub window: WindowSize,
}

impl CoreConfig {
    /// The paper's 8-way machine with the given window size.
    ///
    /// # Errors
    ///
    /// Returns [`OooError::InvalidWindow`] for an invalid window size.
    pub fn isca98(window_entries: usize) -> Result<Self, OooError> {
        Ok(CoreConfig {
            fetch_width: 8,
            issue_width: 8,
            commit_width: 8,
            window: WindowSize::new(window_entries)?,
        })
    }

    /// Validates the widths.
    ///
    /// # Errors
    ///
    /// Returns [`OooError::InvalidWidth`] if any width is zero.
    pub fn validate(&self) -> Result<(), OooError> {
        if self.fetch_width == 0 {
            return Err(OooError::InvalidWidth { what: "fetch" });
        }
        if self.issue_width == 0 {
            return Err(OooError::InvalidWidth { what: "issue" });
        }
        if self.commit_width == 0 {
            return Err(OooError::InvalidWidth { what: "commit" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_validation() {
        assert!(WindowSize::new(0).is_err());
        assert!(WindowSize::new(8).is_err());
        assert!(WindowSize::new(40).is_err());
        assert!(WindowSize::new(272).is_err());
        assert_eq!(WindowSize::new(128).unwrap().entries(), 128);
    }

    #[test]
    fn paper_sweep_matches() {
        let v: Vec<usize> = WindowSize::paper_sweep().map(|w| w.entries()).collect();
        assert_eq!(v, vec![16, 32, 48, 64, 80, 96, 112, 128]);
    }

    #[test]
    fn best_conventional_is_64() {
        assert_eq!(WindowSize::best_conventional().entries(), 64);
    }

    #[test]
    fn isca98_is_8_wide() {
        let c = CoreConfig::isca98(64).unwrap();
        assert_eq!((c.fetch_width, c.issue_width, c.commit_width), (8, 8, 8));
        c.validate().unwrap();
    }

    #[test]
    fn width_validation() {
        let mut c = CoreConfig::isca98(64).unwrap();
        c.issue_width = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(WindowSize::new(64).unwrap().to_string(), "64-entry");
    }
}
