//! Single-pass window sweeps over a shared instruction tape.
//!
//! The legacy sweep ([`crate::perf::sweep`]) re-synthesizes the
//! instruction stream for every window size: eight configurations mean
//! eight full generator runs over ~identical prefixes. This module
//! records the stream once in a [`cap_trace::tape::InstTape`] and replays
//! an independent cursor per configuration, so generation cost is paid a
//! single time per sweep and the cores spend their cycles simulating.
//!
//! Unlike the cache multisweep — where one traversal literally computes
//! all boundaries at once from stack distances — the window simulations
//! cannot be fused: IPC at window `W` depends on the full scheduling
//! dynamics at that size. What *is* shared is the input. Each
//! configuration still runs on its own [`OooCore`], driven by a cursor
//! that replays exactly the instructions a pristine generator would have
//! produced, so every [`QueueSweepPoint`] is bit-identical to the legacy
//! path's (the tests and `cap-verify` hold this as an invariant).
//!
//! The tape is lazy and grows only as far as the hungriest configuration
//! reads (a core fetches roughly `insts + occupancy` instructions), so
//! peak memory is one `Inst` (~40 bytes) per simulated instruction.

use crate::config::WindowSize;
use crate::error::OooError;
use crate::perf::{sweep_point, QueueSweepPoint};
use cap_timing::queue::QueueTimingModel;
use cap_trace::inst::InstStream;
use cap_trace::tape::InstTape;

/// Simulates every window size over one shared recorded instruction
/// stream (Figure 10 methodology, single-generation).
///
/// Results are bit-identical to [`crate::perf::sweep`] called with a
/// fresh clone of `gen` per window.
///
/// # Errors
///
/// Propagates timing-model errors, exactly as the legacy sweep does.
pub fn multisweep<S: InstStream>(
    gen: S,
    insts: u64,
    windows: impl IntoIterator<Item = WindowSize>,
    timing: &QueueTimingModel,
) -> Result<Vec<QueueSweepPoint>, OooError> {
    let tape = InstTape::new(gen);
    windows.into_iter().map(|w| sweep_point(tape.cursor(), insts, w, timing)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::sweep;
    use cap_timing::Technology;
    use cap_trace::inst::{IlpParams, SegmentIlp};

    fn timing() -> QueueTimingModel {
        QueueTimingModel::new(Technology::isca98_evaluation())
    }

    #[test]
    fn matches_legacy_sweep_bit_for_bit() {
        for seed in [2u64, 19] {
            let params = IlpParams::balanced();
            let legacy = sweep(
                || SegmentIlp::new(params, seed).unwrap(),
                30_000,
                WindowSize::paper_sweep(),
                &timing(),
            )
            .unwrap();
            let single = multisweep(
                SegmentIlp::new(params, seed).unwrap(),
                30_000,
                WindowSize::paper_sweep(),
                &timing(),
            )
            .unwrap();
            assert_eq!(legacy.len(), single.len());
            for (a, b) in legacy.iter().zip(&single) {
                assert_eq!(a.window, b.window);
                assert_eq!(a.stats, b.stats);
                assert_eq!(a.cycle.value().to_bits(), b.cycle.value().to_bits());
                assert_eq!(a.tpi.value().to_bits(), b.tpi.value().to_bits());
            }
        }
    }

    #[test]
    fn tape_generates_once_for_all_windows() {
        let gen = SegmentIlp::new(IlpParams::balanced(), 5).unwrap();
        let tape = InstTape::new(gen);
        let points: Vec<_> = WindowSize::paper_sweep()
            .into_iter()
            .map(|w| sweep_point(tape.cursor(), 10_000, w, &timing()).unwrap())
            .collect();
        assert_eq!(points.len(), 8);
        // The hungriest configuration reads target + commit overshoot +
        // window occupancy; everything else reuses its prefix.
        let generated = tape.generated();
        assert!(generated >= 10_000);
        assert!(generated < 10_000 + 8 + 129, "over-generated: {generated}");
    }

    #[test]
    fn single_window_multisweep_matches_sweep_point() {
        let params = IlpParams::balanced();
        let w = WindowSize::new(96).unwrap();
        let a = multisweep(SegmentIlp::new(params, 8).unwrap(), 5_000, [w], &timing()).unwrap();
        let b =
            sweep_point(SegmentIlp::new(params, 8).unwrap(), 5_000, w, &timing()).unwrap();
        assert_eq!(a, vec![b]);
    }
}
