//! The naive full-scan reference engine.
//!
//! [`ScanCore`] is the original [`OooCore`](crate::core::OooCore)
//! implementation, kept verbatim: every cycle it re-examines the whole
//! window to find ready instructions, recomputing each entry's producer
//! status from scratch. That is O(occupancy · issue-scan) per cycle —
//! simple to audit, slow for large windows.
//!
//! The production core replaced the scan with incremental wakeup
//! bookkeeping that is schedule-identical by construction. This module
//! exists so the claim stays *checked* rather than believed:
//! `cap-ooo`'s tests lock the two engines together cycle-for-cycle, and
//! `cap-verify` fuzzes the pairing across generators, seeds and window
//! sizes. If the fast path ever drifts, the drift is attributable here.
//!
//! The resize API mirrors the production core exactly (including
//! [`OooError::InvalidWindow`] on requests beyond the physical window)
//! so differential runs can exercise reconfiguration too.

use crate::config::{CoreConfig, WindowSize};
use crate::core::RunStats;
use crate::error::OooError;
use cap_trace::inst::{Inst, InstStream};
use std::collections::VecDeque;

const NOT_ISSUED: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Entry {
    inst: Inst,
    dispatch_cycle: u64,
    /// Cycle at which the result becomes available; `NOT_ISSUED` before
    /// issue.
    done_cycle: u64,
}

/// The full-scan out-of-order core, for differential testing only.
///
/// Semantics are identical to [`OooCore`](crate::core::OooCore); see its
/// documentation. Prefer the production core everywhere else — this one
/// does O(window) work per cycle.
#[derive(Debug, Clone)]
pub struct ScanCore {
    config: CoreConfig,
    active_window: usize,
    pending_shrink: Option<usize>,
    window: VecDeque<Entry>,
    cycle: u64,
    committed: u64,
    next_seq: Option<u64>,
}

impl ScanCore {
    /// Creates a core; the configured window is the physical size.
    ///
    /// # Errors
    ///
    /// Returns [`OooError::InvalidWidth`] if the configuration fails
    /// [`CoreConfig::validate`].
    pub fn try_new(config: CoreConfig) -> Result<Self, OooError> {
        config.validate()?;
        Ok(ScanCore {
            config,
            active_window: config.window.entries(),
            pending_shrink: None,
            window: VecDeque::with_capacity(config.window.entries()),
            cycle: 0,
            committed: 0,
            next_seq: None,
        })
    }

    /// Creates a core, panicking on an invalid configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CoreConfig::validate`].
    pub fn new(config: CoreConfig) -> Self {
        Self::try_new(config).expect("invalid core configuration")
    }

    /// The static configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The number of currently active window entries.
    pub fn active_window(&self) -> usize {
        self.active_window
    }

    /// Whether a shrink is still draining.
    pub fn resize_pending(&self) -> bool {
        self.pending_shrink.is_some()
    }

    /// Cycles elapsed since construction.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Instructions committed since construction.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Current window occupancy.
    pub fn occupancy(&self) -> usize {
        self.window.len()
    }

    /// Requests a window reconfiguration; same contract as
    /// [`OooCore::request_resize`](crate::core::OooCore::request_resize).
    ///
    /// # Errors
    ///
    /// Returns [`OooError::InvalidWindow`] if `new` exceeds the physical
    /// window.
    pub fn request_resize(&mut self, new: WindowSize) -> Result<(), OooError> {
        let n = new.entries();
        if n > self.config.window.entries() {
            return Err(OooError::InvalidWindow { entries: n });
        }
        if n >= self.active_window || self.window.len() <= n {
            self.active_window = n;
            self.pending_shrink = None;
        } else {
            self.pending_shrink = Some(n);
        }
        Ok(())
    }

    fn producer_done(&self, dep: u64, now: u64) -> bool {
        match self.window.front() {
            None => true,
            Some(front) if dep < front.inst.seq => true,
            Some(front) => {
                let idx = (dep - front.inst.seq) as usize;
                // Producers always precede consumers, so the index is in
                // range for any dep of a windowed instruction.
                self.window[idx].done_cycle <= now
            }
        }
    }

    fn ready(&self, e: &Entry, now: u64) -> bool {
        e.done_cycle == NOT_ISSUED
            && e.dispatch_cycle < now
            && e.inst.deps().all(|d| self.producer_done(d, now))
    }

    /// Advances the machine one cycle; same contract as
    /// [`OooCore::step`](crate::core::OooCore::step).
    pub fn step<S: InstStream>(&mut self, stream: &mut S) -> usize {
        self.cycle += 1;
        let now = self.cycle;

        // 1. Commit.
        let mut retired = 0;
        while retired < self.config.commit_width {
            match self.window.front() {
                Some(e) if e.done_cycle != NOT_ISSUED && e.done_cycle <= now => {
                    self.window.pop_front();
                    self.committed += 1;
                    retired += 1;
                }
                _ => break,
            }
        }

        // 2. Wakeup + select + issue, oldest first.
        let mut issued = 0;
        for i in 0..self.window.len() {
            if issued == self.config.issue_width {
                break;
            }
            let e = self.window[i];
            if e.done_cycle == NOT_ISSUED && self.ready(&e, now) {
                self.window[i].done_cycle = now + u64::from(e.inst.latency);
                issued += 1;
            }
        }

        // 3. Apply a drained shrink, then dispatch.
        if let Some(n) = self.pending_shrink {
            if self.window.len() <= n {
                self.active_window = n;
                self.pending_shrink = None;
            }
        }
        if self.pending_shrink.is_none() {
            let mut fetched = 0;
            while fetched < self.config.fetch_width && self.window.len() < self.active_window {
                let inst = stream.next_inst();
                if let Some(expect) = self.next_seq {
                    assert_eq!(inst.seq, expect, "instruction stream must be contiguous");
                }
                self.next_seq = Some(inst.seq + 1);
                self.window.push_back(Entry { inst, dispatch_cycle: now, done_cycle: NOT_ISSUED });
                fetched += 1;
            }
        }

        retired
    }

    /// Runs until at least `insts` further instructions have committed;
    /// same contract as [`OooCore::run`](crate::core::OooCore::run).
    pub fn run<S: InstStream>(&mut self, stream: &mut S, insts: u64) -> RunStats {
        let c0 = self.cycle;
        let i0 = self.committed;
        let target = i0 + insts;
        while self.committed < target {
            self.step(stream);
        }
        RunStats { cycles: self.cycle - c0, committed: self.committed - i0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_trace::inst::{IlpParams, SegmentIlp};

    #[test]
    fn scan_core_basics() {
        let mut core = ScanCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = SegmentIlp::new(IlpParams::balanced(), 1).unwrap();
        let stats = core.run(&mut s, 10_000);
        assert!(stats.committed >= 10_000);
        assert!(stats.ipc() > 0.0 && stats.ipc() <= 8.0);
    }

    #[test]
    fn scan_core_rejects_resize_beyond_physical() {
        let mut core = ScanCore::new(CoreConfig::isca98(32).unwrap());
        assert_eq!(
            core.request_resize(WindowSize::new(64).unwrap()).unwrap_err(),
            OooError::InvalidWindow { entries: 64 },
        );
    }
}
