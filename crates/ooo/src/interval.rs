//! Interval-granular performance recording (paper §6).
//!
//! The paper's Figures 12–13 plot average TPI over consecutive intervals
//! of 2000 instructions. This module runs a core and slices its progress
//! into such intervals, attributing each cycle to the interval in which it
//! retires.

use crate::core::OooCore;
use cap_obs::{Event, Recorder, SampleEvent};
use cap_timing::units::Ns;
use cap_trace::inst::InstStream;

/// The interval length used throughout the paper's Section 6.
pub const PAPER_INTERVAL_INSTS: u64 = 2000;

/// One recorded interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalSample {
    /// Zero-based interval index.
    pub index: u64,
    /// Cycles the interval took.
    pub cycles: u64,
    /// Instructions committed in the interval (equals the interval length
    /// except possibly for bookkeeping at the very end of a run).
    pub insts: u64,
}

impl IntervalSample {
    /// Average time per instruction over the interval at a given cycle
    /// time.
    pub fn tpi(&self, cycle_time: Ns) -> Ns {
        if self.insts == 0 {
            Ns(0.0)
        } else {
            cycle_time * (self.cycles as f64 / self.insts as f64)
        }
    }
}

/// Runs `core` over `stream` for `intervals` intervals of `interval_len`
/// committed instructions each, recording the cycle cost of every
/// interval.
///
/// # Errors
///
/// Returns [`OooError::ZeroIntervalLength`] if `interval_len` is zero.
pub fn record_intervals<S: InstStream>(
    core: &mut OooCore,
    stream: &mut S,
    intervals: u64,
    interval_len: u64,
) -> Result<Vec<IntervalSample>, crate::error::OooError> {
    record_intervals_observed(core, stream, intervals, interval_len, 0, &cap_obs::NoopRecorder, None)
}

/// [`record_intervals`] with trace emission: each recorded interval also
/// produces one [`cap_obs::SampleEvent`] carrying the raw cycle/instruction
/// counters, numbered `base_index + 1 ..` so a managed run's samples line
/// up with its decision events.
///
/// # Errors
///
/// Returns [`OooError::ZeroIntervalLength`] if `interval_len` is zero.
pub fn record_intervals_observed<S: InstStream>(
    core: &mut OooCore,
    stream: &mut S,
    intervals: u64,
    interval_len: u64,
    base_index: u64,
    recorder: &dyn Recorder,
    label: Option<&str>,
) -> Result<Vec<IntervalSample>, crate::error::OooError> {
    if interval_len == 0 {
        return Err(crate::error::OooError::ZeroIntervalLength);
    }
    let mut out = Vec::with_capacity(intervals as usize);
    for index in 0..intervals {
        let start_cycles = core.cycles();
        let start_insts = core.committed();
        let target = start_insts + interval_len;
        while core.committed() < target {
            core.step(stream);
        }
        let sample = IntervalSample {
            index,
            cycles: core.cycles() - start_cycles,
            insts: core.committed() - start_insts,
        };
        if recorder.enabled() {
            recorder.record(&Event::Sample(SampleEvent {
                app: label.map(str::to_string),
                interval: base_index + index + 1,
                cycles: sample.cycles,
                insts: sample.insts,
            }));
        }
        out.push(sample);
    }
    Ok(out)
}

/// Records exactly one interval at position `index` of a longer run —
/// the per-interval primitive of managed-run kernels. Equivalent to
/// [`record_intervals_observed`] with `intervals == 1` and
/// `base_index == index`; returns `None` only if the core produced no
/// sample (which the batched API would surface as an empty vector).
///
/// # Errors
///
/// Returns [`OooError::ZeroIntervalLength`] if `interval_len` is zero.
///
/// [`OooError::ZeroIntervalLength`]: crate::error::OooError::ZeroIntervalLength
pub fn record_interval_observed<S: InstStream>(
    core: &mut OooCore,
    stream: &mut S,
    interval_len: u64,
    index: u64,
    recorder: &dyn Recorder,
    label: Option<&str>,
) -> Result<Option<IntervalSample>, crate::error::OooError> {
    let samples = record_intervals_observed(core, stream, 1, interval_len, index, recorder, label)?;
    Ok(samples.first().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use cap_trace::inst::{IlpParams, SegmentIlp};
    use cap_trace::phase::{Phase, PhasedIlp};

    fn serial() -> IlpParams {
        IlpParams {
            chain_len: 8,
            burst_len: 2,
            chain_latency: 2,
            burst_latency: 1,
            cross_dep_prob: 1.0,
            burst_chain_len: 1,
            far_dep_prob: 0.0,
            jitter: 0.0,
        }
    }

    fn parallel() -> IlpParams {
        IlpParams { cross_dep_prob: 0.0, ..serial() }
    }

    #[test]
    fn intervals_cover_requested_span() {
        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = SegmentIlp::new(IlpParams::balanced(), 1).unwrap();
        let v = record_intervals(&mut core, &mut s, 10, PAPER_INTERVAL_INSTS).unwrap();
        assert_eq!(v.len(), 10);
        let total: u64 = v.iter().map(|i| i.insts).sum();
        // Commit width 8 can overshoot an interval boundary by < 8.
        assert!(total >= 10 * PAPER_INTERVAL_INSTS);
        assert!(total < 10 * PAPER_INTERVAL_INSTS + 8 * 10);
        for (i, s) in v.iter().enumerate() {
            assert_eq!(s.index, i as u64);
            assert!(s.cycles > 0);
        }
    }

    #[test]
    fn phased_stream_shows_up_as_interval_variation() {
        // Alternate serial and parallel phases of 10_000 instructions:
        // interval cycle costs must alternate correspondingly.
        let schedule = vec![Phase::new(serial(), 10_000), Phase::new(parallel(), 10_000)];
        let mut stream = PhasedIlp::new(schedule, 3).unwrap();
        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let v = record_intervals(&mut core, &mut stream, 10, 2000).unwrap();
        // Intervals 0-4 are serial (slow), 5-9 parallel (fast).
        let slow: u64 = v[1..4].iter().map(|i| i.cycles).sum();
        let fast: u64 = v[6..9].iter().map(|i| i.cycles).sum();
        assert!(slow > fast * 2, "serial {slow} vs parallel {fast}");
    }

    #[test]
    fn tpi_scales_with_cycle_time() {
        let s = IntervalSample { index: 0, cycles: 4000, insts: 2000 };
        assert!((s.tpi(Ns(0.5)).value() - 1.0).abs() < 1e-12);
        assert!((s.tpi(Ns(1.0)).value() - 2.0).abs() < 1e-12);
        let empty = IntervalSample { index: 0, cycles: 0, insts: 0 };
        assert_eq!(empty.tpi(Ns(0.5)), Ns(0.0));
    }

    #[test]
    fn zero_interval_rejected() {
        let mut core = OooCore::new(CoreConfig::isca98(64).unwrap());
        let mut s = SegmentIlp::new(IlpParams::balanced(), 1).unwrap();
        assert_eq!(
            record_intervals(&mut core, &mut s, 1, 0).unwrap_err(),
            crate::error::OooError::ZeroIntervalLength
        );
    }
}
