//! TPI evaluation and window sweeps for the instruction-queue study.
//!
//! The paper's Figure 10 methodology: run each application at every window
//! size 16–128, with the clock set by that size's wakeup+select delay, and
//! report `TPI = cycle time / IPC`.

use crate::config::{CoreConfig, WindowSize};
use crate::core::{OooCore, RunStats};
use crate::error::OooError;
use cap_timing::queue::QueueTimingModel;
use cap_timing::units::Ns;
use cap_trace::inst::InstStream;

/// One point of a window sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueSweepPoint {
    /// The fixed window size simulated.
    pub window: WindowSize,
    /// Measured cycles and instructions.
    pub stats: RunStats,
    /// Cycle time at this window size.
    pub cycle: Ns,
    /// Average time per instruction.
    pub tpi: Ns,
}

/// Computes TPI from a run at a given window size.
///
/// # Errors
///
/// Returns an error if the timing model rejects the window size.
pub fn tpi(window: WindowSize, stats: RunStats, timing: &QueueTimingModel) -> Result<(Ns, Ns), OooError> {
    let cycle = timing
        .cycle_time(window.entries())
        .map_err(|_| OooError::InvalidWindow { entries: window.entries() })?;
    let ipc = stats.ipc();
    let t = if ipc > 0.0 { cycle / ipc } else { Ns(f64::INFINITY) };
    Ok((cycle, t))
}

/// Simulates the same instruction stream at every given window size
/// (Figure 10 methodology). `make_stream` must return an identical
/// pristine stream each call.
///
/// # Errors
///
/// Propagates timing-model errors.
pub fn sweep<S, F>(
    mut make_stream: F,
    insts: u64,
    windows: impl IntoIterator<Item = WindowSize>,
    timing: &QueueTimingModel,
) -> Result<Vec<QueueSweepPoint>, OooError>
where
    S: InstStream,
    F: FnMut() -> S,
{
    windows.into_iter().map(|w| sweep_point(make_stream(), insts, w, timing)).collect()
}

/// Simulates one fixed window size — a single leg of a sweep. This is
/// the unit of work the parallel sweep engine fans out; [`sweep`] is
/// exactly a serial fold over it, which is what makes `--jobs N` output
/// byte-identical to `--jobs 1`.
///
/// # Errors
///
/// Propagates timing-model errors.
pub fn sweep_point<S: InstStream>(
    mut stream: S,
    insts: u64,
    window: WindowSize,
    timing: &QueueTimingModel,
) -> Result<QueueSweepPoint, OooError> {
    let mut core = OooCore::try_new(CoreConfig::isca98(window.entries())?)?;
    let stats = core.run(&mut stream, insts);
    let (cycle, t) = tpi(window, stats, timing)?;
    Ok(QueueSweepPoint { window, stats, cycle, tpi: t })
}

/// The sweep point with the lowest TPI (the process-level adaptive choice
/// for this application). Ties break toward the smaller window.
pub fn best_point(points: &[QueueSweepPoint]) -> Option<&QueueSweepPoint> {
    points.iter().min_by(|a, b| {
        a.tpi.value().total_cmp(&b.tpi.value()).then(a.window.cmp(&b.window))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_timing::Technology;
    use cap_trace::inst::{IlpParams, SegmentIlp};

    fn timing() -> QueueTimingModel {
        QueueTimingModel::new(Technology::isca98_evaluation())
    }

    #[test]
    fn sweep_visits_all_sizes() {
        let params = IlpParams::balanced();
        let points = sweep(
            || SegmentIlp::new(params, 4).unwrap(),
            20_000,
            WindowSize::paper_sweep(),
            &timing(),
        )
        .unwrap();
        assert_eq!(points.len(), 8);
        for p in &points {
            assert!((20_000..20_008).contains(&p.stats.committed));
            assert!(p.tpi.value() > 0.0);
        }
    }

    #[test]
    fn low_ilp_stream_favors_small_window() {
        // Fully serialized chains: IPC is flat, so the fastest clock wins.
        let params = IlpParams {
            chain_len: 8,
            burst_len: 2,
            chain_latency: 2,
            burst_latency: 1,
            cross_dep_prob: 1.0,
            burst_chain_len: 1,
            far_dep_prob: 0.0,
            jitter: 0.0,
        };
        let points = sweep(
            || SegmentIlp::new(params, 4).unwrap(),
            30_000,
            WindowSize::paper_sweep(),
            &timing(),
        )
        .unwrap();
        assert_eq!(best_point(&points).unwrap().window.entries(), 16);
    }

    #[test]
    fn window_scaled_ilp_favors_large_window() {
        // Long independent segments: IPC keeps growing through 128.
        let params = IlpParams {
            chain_len: 16,
            burst_len: 16,
            chain_latency: 2,
            burst_latency: 1,
            cross_dep_prob: 0.0,
            burst_chain_len: 16,
            far_dep_prob: 0.0,
            jitter: 0.0,
        };
        let points = sweep(
            || SegmentIlp::new(params, 4).unwrap(),
            60_000,
            WindowSize::paper_sweep(),
            &timing(),
        )
        .unwrap();
        let best = best_point(&points).unwrap();
        assert!(best.window.entries() >= 96, "best was {}", best.window);
    }

    #[test]
    fn tpi_is_cycle_over_ipc() {
        let stats = RunStats { cycles: 1000, committed: 4000 };
        let (cycle, t) = tpi(WindowSize::new(64).unwrap(), stats, &timing()).unwrap();
        assert!((t.value() - cycle.value() / 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_run_gives_infinite_tpi() {
        let (_, t) = tpi(WindowSize::new(64).unwrap(), RunStats::default(), &timing()).unwrap();
        assert!(t.value().is_infinite());
    }

    #[test]
    fn best_point_empty_is_none() {
        assert!(best_point(&[]).is_none());
    }
}
