//! Adaptive instruction queue: run several applications at every window
//! size and show how the process-level adaptive scheme beats the one-size
//! conventional design exactly where the paper says it should.
//!
//! Run with: `cargo run --release --example adaptive_queue`

use cap::core::experiments::{ExperimentScale, QueueExperiment};
use cap::workloads::App;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = QueueExperiment::new(ExperimentScale::Smoke);
    let apps = [App::Gcc, App::Compress, App::Appcg, App::Fpppp];

    for app in apps {
        let curve = exp.sweep(app)?;
        println!("{app}:");
        println!("{:>10} {:>10} {:>8} {:>10}", "entries", "cycle ns", "IPC", "TPI ns");
        for p in &curve.points {
            println!("{:>10} {:>10.3} {:>8.2} {:>10.3}", p.entries, p.cycle_ns, p.ipc, p.tpi_ns);
        }
        let best = curve.best();
        let conv = curve.conventional();
        println!(
            "  best window: {} entries; gain over the 64-entry conventional: {:.1} %\n",
            best.entries,
            (1.0 - best.tpi_ns / conv.tpi_ns) * 100.0
        );
    }

    println!("Paper expectations: gcc best at 64, compress at 128, appcg and fpppp at 16.");
    Ok(())
}
