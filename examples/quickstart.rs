//! Quickstart: build a complexity-adaptive cache hierarchy, run one
//! application at every L1/L2 boundary, and compare the process-level
//! adaptive choice against the paper's best conventional configuration.
//!
//! Run with: `cargo run --release --example quickstart`

use cap::core::experiments::{CacheExperiment, ExperimentScale};
use cap::workloads::App;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = CacheExperiment::new(ExperimentScale::Smoke)?;
    let app = App::Stereo;

    println!("Sweeping the movable L1/L2 boundary for `{app}`:\n");
    let curve = exp.sweep(app)?;
    println!("{:>8} {:>8} {:>10} {:>10} {:>10}", "L1 KB", "assoc", "cycle ns", "TPI ns", "miss TPI");
    for p in &curve.points {
        println!(
            "{:>8} {:>8} {:>10.3} {:>10.3} {:>10.3}",
            p.l1_kb, p.l1_assoc, p.cycle_ns, p.tpi_ns, p.tpi_miss_ns
        );
    }

    let best = curve.best();
    let conv = curve.conventional();
    println!();
    println!("best conventional (16 KB 4-way): TPI {:.3} ns", conv.tpi_ns);
    println!(
        "process-level adaptive choice:   TPI {:.3} ns at L1={} KB/{}-way",
        best.tpi_ns, best.l1_kb, best.l1_assoc
    );
    println!(
        "TPI reduction: {:.1} % (the paper reports 46 % for stereo)",
        (1.0 - best.tpi_ns / conv.tpi_ns) * 100.0
    );
    Ok(())
}
