//! Power management on a CAP (paper §4.1): one die, several
//! performance/power operating points — from the full structure at its
//! fastest clock down to the paper's lowest-power mode (smallest
//! structures, slowest clock).
//!
//! Run with: `cargo run --release --example power_modes`

use cap::core::experiments::{ExperimentScale, QueueExperiment};
use cap::core::power::{best_performance, lowest_power, queue_frontier, PowerModel};
use cap::workloads::App;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = QueueExperiment::new(ExperimentScale::Smoke);
    let curve = exp.sweep(App::Gcc)?;
    let frontier = queue_frontier(&curve, PowerModel::typical());

    println!("Operating points for gcc on the adaptive instruction queue:\n");
    println!("{:>10} {:>12} {:>10} {:>10} {:>10}", "entries", "period ns", "TPI ns", "power", "EPI");
    for p in &frontier {
        println!(
            "{:>10} {:>12.3} {:>10.3} {:>10.3} {:>10.3}",
            p.entries, p.period_ns, p.tpi_ns, p.power, p.epi
        );
    }

    let hp = best_performance(&frontier).expect("frontier is nonempty");
    let lp = lowest_power(&frontier).expect("frontier is nonempty");
    println!();
    println!(
        "server point: {} entries @ {:.3} ns ({:.2}x the power of the laptop point)",
        hp.entries,
        hp.period_ns,
        hp.power / lp.power
    );
    println!(
        "laptop point: {} entries @ {:.3} ns ({:.2}x the TPI of the server point)",
        lp.entries,
        lp.period_ns,
        lp.tpi_ns / hp.tpi_ns
    );
    println!("\nThe paper: \"a single CAP design can be configured for product");
    println!("environments ranging from high-end servers to low power laptops.\"");
    Ok(())
}
