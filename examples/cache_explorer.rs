//! Cache design-space explorer: drive the adaptive hierarchy directly —
//! no experiment driver — with your own region mixture, move the L1/L2
//! boundary mid-run, and watch the exclusive structure keep its contents.
//!
//! Run with: `cargo run --release --example cache_explorer`

use cap::cache::config::Boundary;
use cap::cache::hierarchy::AdaptiveCacheHierarchy;
use cap::cache::perf::{evaluate, PerfParams};
use cap::cache::sim;
use cap::timing::cacti::CacheTimingModel;
use cap::timing::Technology;
use cap::trace::mem::{Region, RegionMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hand-built workload: a 24 KB hot array plus a 1 MB random heap.
    let pristine = RegionMix::builder(42)
        .region(Region::sequential_loop(0, 24 * 1024, 32), 4.0)
        .region(Region::random(1 << 30, 1 << 20), 0.3)
        .build()?;

    let timing = CacheTimingModel::isca98(Technology::isca98_evaluation());
    let params = PerfParams::isca98(3.0);

    println!("Boundary sweep for a 24 KB working set + 1 MB heap:\n");
    println!("{:>12} {:>10} {:>10} {:>10}", "config", "L1 miss", "TPI ns", "verdict");
    let points = sim::sweep(|| pristine.clone(), 120_000, Boundary::paper_sweep(), &timing, params)?;
    let best = sim::best_point(&points).expect("sweep is nonempty").boundary;
    for p in &points {
        println!(
            "{:>12} {:>9.1}% {:>10.3} {:>10}",
            p.boundary.to_string(),
            p.stats.l1_miss_ratio() * 100.0,
            p.tpi.total_tpi().value(),
            if p.boundary == best { "<= best" } else { "" }
        );
    }

    // Now demonstrate the reconfiguration property the paper's design is
    // built around: moving the boundary does not touch cache contents.
    println!("\nReconfiguring a live cache:");
    let mut cache = AdaptiveCacheHierarchy::isca98(Boundary::new(2)?);
    let mut stream = pristine.clone();
    let _ = sim::run(&mut stream, 50_000, &mut cache);
    let before = cache.contents_snapshot().len();
    cache.set_boundary(best);
    let after = cache.contents_snapshot().len();
    println!("  resident blocks before move: {before}");
    println!("  resident blocks after move:  {after} (identical — no invalidation)");

    let stats = sim::run(&mut stream, 50_000, &mut cache);
    let tpi = evaluate(&stats, best, &timing, params)?;
    println!("  TPI at the new boundary:     {:.3} ns", tpi.total_tpi().value());
    Ok(())
}
