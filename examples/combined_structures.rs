//! The paper's structures "applied in concert" (§5.4): optimize the
//! cache boundary and the window size jointly under a shared dynamic
//! clock, and see where the joint optimum leaves the standalone choices.
//!
//! Run with: `cargo run --release --example combined_structures`

use cap::core::experiments::ExperimentScale;
use cap::core::extended::CombinedExperiment;
use cap::workloads::App;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = CombinedExperiment::new(ExperimentScale::Smoke);
    for app in [App::Stereo, App::M88ksim, App::Appcg] {
        let s = exp.study(app)?;
        let b = s.best();
        println!("{}:", s.app);
        println!("  standalone choices: L1={} KB, {}-entry window", s.solo_cache_kb, s.solo_window);
        println!(
            "  joint optimum:      L1={} KB, {}-entry window @ {:.3} ns clock",
            b.l1_kb, b.entries, b.cycle_ns
        );
        println!(
            "  joint TPI {:.3} ns vs composed {:.3} ns ({:+.1} %)\n",
            b.tpi_ns,
            s.composed_tpi(),
            (b.tpi_ns / s.composed_tpi() - 1.0) * 100.0
        );
    }
    println!("Behind a slow structure the other structure's clock cost vanishes —");
    println!("the joint space is where the paper's parenthetical in §5.4 lives.");
    Ok(())
}
