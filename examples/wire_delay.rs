//! Technology exploration: when does repeater buffering win, and what
//! does that mean for adaptive structures? Reproduces the reasoning of
//! the paper's Section 2 for a user-specified structure.
//!
//! Run with: `cargo run --release --example wire_delay -- [subarray_kb]`

use cap::timing::wire::{break_even_length, cache_bus_length, BufferedWire, Wire};
use cap::timing::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let subarray_kb: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(2);
    let subarray_bytes = subarray_kb * 1024;

    println!("Cache built from {subarray_kb} KB subarrays\n");
    for tech in Technology::paper_sweep() {
        let be = break_even_length(tech);
        println!("{tech}: buffering pays beyond {:.2} mm of bus", be.value());
        for n in [4usize, 8, 16] {
            let wire = Wire::new(cache_bus_length(n, subarray_bytes)?);
            let buffered = BufferedWire::optimal(wire, tech);
            let better = if buffered.delay() < wire.unbuffered_delay() { "buffered" } else { "unbuffered" };
            println!(
                "  {:>2} subarrays ({:>3} KB): unbuffered {:.3} ns, buffered {:.3} ns with {} repeaters -> {}",
                n,
                n * subarray_kb,
                wire.unbuffered_delay().value(),
                buffered.delay().value(),
                buffered.num_repeaters(),
                better
            );
        }
        println!();
    }

    println!(
        "Once buffered, the electrically isolated segment between repeaters\n\
         is the minimum configuration increment an adaptive structure can\n\
         support with no delay penalty (paper Section 3)."
    );
    let tech = Technology::isca98_evaluation();
    let wire = Wire::new(cache_bus_length(16, subarray_bytes)?);
    let buffered = BufferedWire::optimal(wire, tech);
    println!(
        "At {tech}, a {} KB structure's segment length is {:.2} mm.",
        16 * subarray_kb,
        buffered.segment_length().value()
    );
    Ok(())
}
