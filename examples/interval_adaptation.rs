//! Section 6 extension: drive a phased application with the
//! interval-based configuration manager — performance monitoring,
//! next-configuration prediction, and a confidence counter to avoid
//! needless reconfiguration — and compare it with the process-level
//! choice and the per-interval oracle.
//!
//! Run with: `cargo run --release --example interval_adaptation`

use cap::core::clock::{DynamicClock, DEFAULT_SWITCH_PENALTY_CYCLES};
use cap::core::experiments::IntervalExperiment;
use cap::core::manager::{run_managed_queue, ConfidencePolicy, IntervalManager};
use cap::core::structure::{AdaptiveStructure, QueueStructure};
use cap::timing::queue::QueueTimingModel;
use cap::workloads::App;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = App::Turb3d;
    let intervals = 400;

    // Managed run, narrated: watch the manager explore, settle, and
    // follow turb3d's phase change.
    let timing = QueueTimingModel::default();
    let mut structure = QueueStructure::isca98(timing, 0)?;
    let table = structure.period_table()?;
    let mut clock = DynamicClock::new(table, DEFAULT_SWITCH_PENALTY_CYCLES)?;
    let mut manager = IntervalManager::new(structure.num_configs(), 40, ConfidencePolicy::default_policy())?;
    let mut stream = app.ilp_profile().build(7);
    let run = run_managed_queue(&mut structure, &mut stream, &mut manager, &mut clock, intervals, 2000)?;

    println!("Managed run of {app} over {intervals} intervals of 2000 instructions:");
    let mut last = usize::MAX;
    for rec in &run.intervals {
        if rec.config != last {
            println!(
                "  interval {:>4}: now at {} (period {:.3} ns)",
                rec.sample.index, structure.describe(rec.config), rec.period.value()
            );
            last = rec.config;
        }
    }
    println!("  reconfigurations: {} (switch penalty total {:.1} ns)", run.switches, run.switch_penalty.value());
    println!("  managed average TPI: {:.3} ns\n", run.average_tpi().value());

    // The summary comparison the ablation bench runs at scale.
    let exp = IntervalExperiment::new();
    let cmp = exp.adaptive_comparison(app, intervals, ConfidencePolicy::default_policy(), 40)?;
    println!("process-level best fixed config: {:.3} ns", cmp.process_level_tpi);
    println!("interval-adaptive manager:       {:.3} ns", cmp.managed_tpi);
    println!("per-interval oracle envelope:    {:.3} ns", cmp.oracle_tpi);
    Ok(())
}
